/// \file
/// Minimal RAII POSIX TCP socket helpers used by the NAD server and client.
/// Loopback/LAN oriented; frames are [u32 length][payload].
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace nadreg::nad {

/// Owns a file descriptor; closes it on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();
  /// Shuts down both directions (unblocks a reader in another thread).
  void Shutdown();

 private:
  int fd_ = -1;
};

/// Listening TCP socket, by default on 127.0.0.1. Pass port 0 for an
/// ephemeral port; `host` must be a dotted-quad address ("0.0.0.0" to
/// listen on all interfaces).
class Listener {
 public:
  static Expected<Listener> Bind(std::uint16_t port,
                                 const std::string& host = "127.0.0.1");

  std::uint16_t port() const { return port_; }
  /// Blocks until a client connects (or the listener is shut down, in
  /// which case the status is kUnavailable).
  Expected<Socket> Accept();
  void Shutdown() { sock_.Shutdown(); }

 private:
  Listener(Socket sock, std::uint16_t port)
      : sock_(std::move(sock)), port_(port) {}
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port (or the given host).
Expected<Socket> Connect(const std::string& host, std::uint16_t port);

/// Puts the socket into non-blocking mode (O_NONBLOCK).
Status SetNonBlocking(const Socket& sock);

/// Begins a non-blocking connect. On success `*connected` says whether
/// the handshake completed synchronously; when false, wait for the socket
/// to become writable and call FinishConnect. The returned socket is
/// already non-blocking with TCP_NODELAY set.
Expected<Socket> StartConnect(const std::string& host, std::uint16_t port,
                              bool* connected);

/// Resolves an in-progress StartConnect once the socket reports writable:
/// kOk if the handshake succeeded, kUnavailable with the SO_ERROR text
/// otherwise.
Status FinishConnect(const Socket& sock);

/// Non-blocking gather-write of `iov` (one sendmsg, MSG_NOSIGNAL).
/// `*sent` is the number of bytes accepted — 0 when the kernel buffer is
/// full (would block). kUnavailable on peer close or error.
Status SendSome(const Socket& sock, const iovec* iov, std::size_t iov_count,
                std::size_t* sent);

/// Non-blocking read into `buf`. `*got` is the number of bytes read — 0
/// when nothing is available (would block). kUnavailable on clean close
/// or error.
Status RecvSome(const Socket& sock, char* buf, std::size_t len,
                std::size_t* got);

/// Sends the whole buffer; kUnavailable on peer close/error.
Status SendAll(const Socket& sock, std::string_view data);

/// Sends one [u32 length][payload] frame.
Status SendFrame(const Socket& sock, std::string_view payload);

/// Appends one [u32 length][payload] frame to `wire` without sending —
/// lets a sender gather many frames into a single buffer and flush them
/// with one SendAll (one syscall per drain pass, not one per frame).
void AppendFrame(std::string* wire, std::string_view payload);

/// Receives one frame; kUnavailable on clean close or error, kInvalid if
/// the advertised length exceeds `max_bytes`.
Expected<std::string> RecvFrame(const Socket& sock, std::uint32_t max_bytes);

/// Growable receive buffer for the zero-copy rx paths: recv(2) lands
/// directly in Tail() (no intermediate stack buffer, no append copy) and
/// parsed frames are consumed from the front by index — the bytes of a
/// frame stay in place, so decoded views alias them safely until the
/// next Fill/Compact. Steady state reuses one warm allocation.
class RxBuffer {
 public:
  /// Unconsumed bytes.
  const char* Head() const { return buf_.get() + head_; }
  std::size_t Size() const { return tail_ - head_; }

  /// Grows/compacts so TailCapacity() >= n. Compaction and growth move
  /// the unconsumed bytes — only call between frame-dispatch cycles
  /// (views into the buffer are invalidated).
  void EnsureTail(std::size_t n);
  /// Space to recv into (valid after EnsureTail).
  char* Tail() { return buf_.get() + tail_; }
  std::size_t TailCapacity() const { return cap_ - tail_; }
  /// Marks n bytes of Tail() as received.
  void Commit(std::size_t n) { tail_ += n; }

  /// Drops n bytes from the front (frame consumed). O(1): only indices
  /// move; the remaining bytes stay put.
  void Consume(std::size_t n) {
    head_ += n;
    if (head_ == tail_) head_ = tail_ = 0;  // free rewind, no copy
  }
  void Clear() { head_ = tail_ = 0; }

 private:
  std::unique_ptr<char[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;  // first unconsumed byte
  std::size_t tail_ = 0;  // one past the last received byte
};

/// Buffered blocking frame reader for the server's per-connection serve
/// loop: one recv(2) can deliver many frames (the old RecvFrame cost two
/// recv syscalls per frame — header, then payload — and one string
/// allocation per frame). The returned view aliases the internal buffer
/// and is valid until the NEXT call. kUnavailable on close/error,
/// kInvalid on an oversized length prefix.
class FrameReader {
 public:
  Expected<std::string_view> Next(const Socket& sock, std::uint32_t max_bytes);

 private:
  RxBuffer buf_;
  std::size_t consumed_next_ = 0;  // previous frame, dropped on next call
};

/// Blocking gather-send of the whole iovec array; kUnavailable on peer
/// close or error. `iov` is MUTATED to track partial-send progress.
Status SendAllVec(const Socket& sock, iovec* iov, std::size_t iov_count);

}  // namespace nadreg::nad
