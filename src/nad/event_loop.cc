#include "nad/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace nadreg::nad {
namespace {

std::uint32_t TranslateEvents(std::uint32_t ep) {
  std::uint32_t out = 0;
  if (ep & (EPOLLIN | EPOLLRDHUP)) out |= EventLoop::kReadable;
  if (ep & EPOLLOUT) out |= EventLoop::kWritable;
  if (ep & (EPOLLERR | EPOLLHUP)) out |= EventLoop::kError;
  return out;
}

}  // namespace

Expected<std::unique_ptr<EventLoop>> EventLoop::Create() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::Unavailable(std::string("epoll_create1: ") +
                               std::strerror(errno));
  }
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    const int err = errno;
    ::close(epoll_fd);
    return Status::Unavailable(std::string("eventfd: ") + std::strerror(err));
  }
  std::unique_ptr<EventLoop> loop(new EventLoop(epoll_fd, wake_fd));
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: a pending wake stays visible
  ev.data.ptr = nullptr;  // sentinel: the wakeup fd
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    return Status::Unavailable(std::string("epoll_ctl(wakefd): ") +
                               std::strerror(errno));
  }
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int wake_fd)
    : epoll_fd_(epoll_fd),
      wake_fd_(wake_fd),
      wheel_(TimerWheel::Clock::now()) {}

EventLoop::~EventLoop() {
  Stop();
  Join();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Start() {
  thread_ = std::jthread([this](std::stop_token stop) { Run(stop); });
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  WakeUp();
}

void EventLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Post(Task task) {
  {
    MutexLock lock(inbox_mu_);
    inbox_.push_back(std::move(task));
  }
  // A task posted from the loop thread itself (a completion handler
  // re-issuing ops — every iteration of a closed-loop workload) needs no
  // eventfd wake: the loop re-checks the inbox before it can sleep
  // (Run's pre-wait peek), so the write+read syscall pair would be pure
  // overhead. Cross-thread posts still wake as before.
  if (!OnLoopThread()) WakeUp();
}

void EventLoop::WakeUp() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter (impossible at 2^64-1 wakes) or EINTR just
  // means a wake is already pending — nothing to handle.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

Status EventLoop::Watch(int fd, IoWatcher* watcher) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.ptr = watcher;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Unavailable(std::string("epoll_ctl(add): ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Unwatch(int fd) {
  // Failure (e.g. fd already closed) is harmless: a closed fd leaves the
  // interest list on its own.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Run(std::stop_token stop) {
  loop_tid_.store(std::this_thread::get_id());
  std::array<epoll_event, 64> events;
  std::vector<Task> tasks;
  while (!stop_.load(std::memory_order_acquire) && !stop.stop_requested()) {
    int timeout_ms = -1;
    // Pre-wait inbox peek: tasks posted from this very thread skip the
    // eventfd wake (see Post), so the loop must never sleep while the
    // inbox is non-empty — poll instead and drain them this iteration.
    {
      MutexLock lock(inbox_mu_);
      if (!inbox_.empty()) timeout_ms = 0;
    }
    const auto next = wheel_.NextDeadline();
    if (timeout_ms != 0 && next != TimerWheel::Clock::time_point::max()) {
      const auto now = TimerWheel::Clock::now();
      if (next <= now) {
        timeout_ms = 0;
      } else {
        const auto wait = std::chrono::ceil<std::chrono::milliseconds>(
            next - now);
        timeout_ms = static_cast<int>(
            std::min<std::chrono::milliseconds::rep>(wait.count(), 60'000));
      }
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), events.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      LOG_WARN << "event loop: epoll_wait: " << std::strerror(errno)
               << "; loop dying, failing over its connections";
      Die(&tasks);
      break;
    }
    // Drain the wake counter BEFORE swapping the inbox. A Post() that
    // lands after this read leaves the counter non-zero, so even though
    // the swap below already picks its task up, the level-triggered wake
    // fd forces the next epoll_wait to return (a harmless spurious wake).
    // Draining after the swap loses that wake: a Post between swap and
    // drain would leave its task queued with the signal consumed, and an
    // empty timer wheel would then sleep on it forever.
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        break;  // the wake fd appears at most once per epoll batch
      }
    }
    // Inbox next: connection registrations and Submit admissions posted
    // before this wake must precede the io they enable.
    {
      MutexLock lock(inbox_mu_);
      tasks.swap(inbox_);
    }
    for (Task& t : tasks) t();
    tasks.clear();
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      static_cast<IoWatcher*>(events[i].data.ptr)
          ->OnIoReady(TranslateEvents(events[i].events));
    }
    wheel_.Advance(TimerWheel::Clock::now());
  }
}

void EventLoop::Die(std::vector<Task>* tasks) {
  // Publish death before the handler runs so a concurrent Post caller
  // checking dead() cannot observe a live loop after the fail-over.
  dead_.store(true, std::memory_order_release);
  if (fatal_handler_) fatal_handler_();
  // One final inbox drain: admissions posted before death was published
  // now run against the state the fatal handler marked dead (the client
  // fails them) instead of sitting in a queue no thread will ever serve.
  {
    MutexLock lock(inbox_mu_);
    tasks->swap(inbox_);
  }
  for (Task& t : *tasks) t();
  tasks->clear();
}

void EventLoop::SetFatalHandler(Task handler) {
  fatal_handler_ = std::move(handler);
}

}  // namespace nadreg::nad
