#include "nad/protocol.h"

namespace nadreg::nad {

std::string EncodeMessage(const Message& m) {
  std::string out;
  Encoder e(&out);
  e.PutU8(static_cast<std::uint8_t>(m.type));
  e.PutU64(m.request_id);
  switch (m.type) {
    case MsgType::kReadReq:
      e.PutU32(m.reg.disk);
      e.PutU64(m.reg.block);
      break;
    case MsgType::kWriteReq:
      e.PutU32(m.reg.disk);
      e.PutU64(m.reg.block);
      e.PutBytes(m.value);
      break;
    case MsgType::kReadResp:
      e.PutBytes(m.value);
      break;
    case MsgType::kWriteResp:
      break;
    case MsgType::kStatsReq:
      break;
    case MsgType::kStatsResp:
      e.PutBytes(m.value);
      break;
    case MsgType::kBatchReq:
    case MsgType::kBatchResp:
      e.PutU32(static_cast<std::uint32_t>(m.subs.size()));
      for (const Message& sub : m.subs) e.PutBytes(EncodeMessage(sub));
      break;
  }
  return out;
}

Expected<std::string> EncodeMessageChecked(const Message& m) {
  std::string out = EncodeMessage(m);
  if (out.size() > kMaxFrameBytes) {
    return Status::Invalid("message: encoded payload of " +
                           std::to_string(out.size()) +
                           " bytes exceeds frame cap of " +
                           std::to_string(kMaxFrameBytes));
  }
  return out;
}

Expected<Message> DecodeMessage(std::string_view payload) {
  Decoder d(payload);
  Message m;
  auto type = d.GetU8();
  if (!type) return type.status();
  if (*type < static_cast<std::uint8_t>(MsgType::kReadReq) ||
      *type > static_cast<std::uint8_t>(MsgType::kBatchResp)) {
    return Status::Invalid("message: unknown type");
  }
  m.type = static_cast<MsgType>(*type);
  auto id = d.GetU64();
  if (!id) return id.status();
  m.request_id = *id;

  switch (m.type) {
    case MsgType::kReadReq: {
      auto disk = d.GetU32();
      if (!disk) return disk.status();
      auto block = d.GetU64();
      if (!block) return block.status();
      m.reg = RegisterId{*disk, *block};
      break;
    }
    case MsgType::kWriteReq: {
      auto disk = d.GetU32();
      if (!disk) return disk.status();
      auto block = d.GetU64();
      if (!block) return block.status();
      auto value = d.GetBytes();
      if (!value) return value.status();
      m.reg = RegisterId{*disk, *block};
      m.value = std::move(*value);
      break;
    }
    case MsgType::kReadResp: {
      auto value = d.GetBytes();
      if (!value) return value.status();
      m.value = std::move(*value);
      break;
    }
    case MsgType::kWriteResp:
      break;
    case MsgType::kStatsReq:
      break;
    case MsgType::kStatsResp: {
      auto value = d.GetBytes();
      if (!value) return value.status();
      m.value = std::move(*value);
      break;
    }
    case MsgType::kBatchReq:
    case MsgType::kBatchResp: {
      auto count = d.GetU32();
      if (!count) return count.status();
      // Each sub-operation costs at least its length prefix; a hostile
      // count cannot make us reserve beyond what the payload can hold.
      if (*count > d.Remaining() / kBatchSubOverhead) {
        return Status::Invalid("batch: count exceeds payload");
      }
      m.subs.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto sub_bytes = d.GetBytes();
        if (!sub_bytes) return sub_bytes.status();
        auto sub = DecodeMessage(*sub_bytes);
        if (!sub) return sub.status();
        const bool ok = m.type == MsgType::kBatchReq
                            ? IsBatchableRequest(sub->type)
                            : IsBatchableResponse(sub->type);
        if (!ok) return Status::Invalid("batch: sub-operation of wrong type");
        m.subs.push_back(std::move(*sub));
      }
      break;
    }
  }
  if (!d.AtEnd()) return Status::Invalid("message: trailing bytes");
  return m;
}

Expected<Endpoint> ParseEndpoint(std::string_view s) {
  Endpoint ep;
  std::string_view port_part = s;
  const auto colon = s.rfind(':');
  if (colon != std::string_view::npos) {
    if (colon == 0) return Status::Invalid("endpoint: empty host");
    ep.host = std::string(s.substr(0, colon));
    port_part = s.substr(colon + 1);
  }
  if (port_part.empty()) return Status::Invalid("endpoint: empty port");
  std::uint32_t port = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9') {
      return Status::Invalid("endpoint: port must be numeric");
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return Status::Invalid("endpoint: port out of range");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

}  // namespace nadreg::nad
