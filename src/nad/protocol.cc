#include "nad/protocol.h"

#include <cassert>
#include <cstring>

#include "common/hotpath_stats.h"

namespace nadreg::nad {

std::string EncodeMessage(const Message& m) {
  std::string out;
  Encoder e(&out);
  e.PutU8(static_cast<std::uint8_t>(m.type));
  e.PutU64(m.request_id);
  switch (m.type) {
    case MsgType::kReadReq:
      e.PutU32(m.reg.disk);
      e.PutU64(m.reg.block);
      break;
    case MsgType::kWriteReq:
    case MsgType::kMergeReq:
      e.PutU32(m.reg.disk);
      e.PutU64(m.reg.block);
      e.PutBytes(m.value);
      break;
    case MsgType::kReadResp:
      e.PutBytes(m.value);
      break;
    case MsgType::kWriteResp:
    case MsgType::kMergeResp:
      break;
    case MsgType::kStatsReq:
      break;
    case MsgType::kStatsResp:
      e.PutBytes(m.value);
      break;
    case MsgType::kBatchReq:
    case MsgType::kBatchResp:
      e.PutU32(static_cast<std::uint32_t>(m.subs.size()));
      for (const Message& sub : m.subs) e.PutBytes(EncodeMessage(sub));
      break;
  }
  return out;
}

std::size_t EncodedMessageSize(const Message& m) {
  std::size_t n = 1 + 8;  // type + request id
  switch (m.type) {
    case MsgType::kReadReq:
      n += 4 + 8;
      break;
    case MsgType::kWriteReq:
    case MsgType::kMergeReq:
      n += 4 + 8 + 4 + m.value.size();
      break;
    case MsgType::kReadResp:
    case MsgType::kStatsResp:
      n += 4 + m.value.size();
      break;
    case MsgType::kWriteResp:
    case MsgType::kMergeResp:
    case MsgType::kStatsReq:
      break;
    case MsgType::kBatchReq:
    case MsgType::kBatchResp:
      n += 4;  // count
      for (const Message& sub : m.subs) n += 4 + EncodedMessageSize(sub);
      break;
  }
  return n;
}

Expected<std::string> EncodeMessageChecked(const Message& m) {
  // Size check FIRST: an oversized message (a write value near the cap,
  // an overgrown batch) fails fast without materializing the multi-
  // megabyte encode it would then throw away.
  const std::size_t size = EncodedMessageSize(m);
  if (size > kMaxFrameBytes) {
    return Status::Invalid("message: encoded payload of " +
                           std::to_string(size) +
                           " bytes exceeds frame cap of " +
                           std::to_string(kMaxFrameBytes));
  }
  return EncodeMessage(m);
}

// ---------------------------------------------------------------------------
// FrameWriter: the zero-copy encode pipeline (see protocol.h).
// ---------------------------------------------------------------------------

char* FrameWriter::HeaderBytes(std::size_t n) {
  char* p = arena_->Alloc(n, 1);
  if (p == open_end_) {
    open_end_ += n;  // contiguous with the open header run: extend it
  } else {
    CloseOpenChunk();
    open_base_ = p;
    open_end_ = p + n;
  }
  payload_bytes_ += n;
  return p;
}

void FrameWriter::CloseOpenChunk() {
  if (open_base_ != open_end_) {
    out_->push_back(WireChunk{open_base_, static_cast<std::size_t>(
                                              open_end_ - open_base_)});
  }
  open_base_ = open_end_ = nullptr;
}

void FrameWriter::BeginFrame() {
  assert(len_slot_ == nullptr && "BeginFrame without EndFrame");
  len_slot_ = HeaderBytes(4);
  payload_bytes_ = 0;  // the length prefix is not payload
}

std::size_t FrameWriter::EndFrame() {
  assert(len_slot_ != nullptr && "EndFrame without BeginFrame");
  CloseOpenChunk();
  Patch32(len_slot_, static_cast<std::uint32_t>(payload_bytes_));
  len_slot_ = nullptr;
  return payload_bytes_;
}

void FrameWriter::PutU8(std::uint8_t v) {
  *HeaderBytes(1) = static_cast<char>(v);
}

void FrameWriter::PutU32(std::uint32_t v) {
  char* p = HeaderBytes(4);
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void FrameWriter::PutU64(std::uint64_t v) {
  char* p = HeaderBytes(8);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void FrameWriter::PutBytesRef(std::string_view v) {
  // Small values are copied: a source string this size may be SSO and a
  // chunk into its inline buffer would dangle the moment the caller
  // moves it (see kSmallValueCopyBytes) — and the copy is cheaper than
  // a dedicated iovec entry anyway.
  if (v.size() <= kSmallValueCopyBytes) {
    PutBytesCopy(v);
    return;
  }
  PutU32(static_cast<std::uint32_t>(v.size()));
  CloseOpenChunk();
  out_->push_back(WireChunk{v.data(), v.size()});
  payload_bytes_ += v.size();
}

void FrameWriter::PutBytesCopy(std::string_view v) {
  PutU32(static_cast<std::uint32_t>(v.size()));
  if (v.empty()) return;
  hotpath::CountCopy(v.size());
  std::memcpy(HeaderBytes(v.size()), v.data(), v.size());
}

char* FrameWriter::PutSlotU32() { return HeaderBytes(4); }

void FrameWriter::Patch32(char* slot, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    slot[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void CompactWire(std::vector<WireChunk>* wire, std::size_t* head,
                 std::size_t* off, Arena* arena, std::string* scratch) {
  assert(*head < wire->size() || *off == 0);
  // Bounce every unsent byte through `scratch`: the arena cannot be
  // Reset while copying directly out of its own slabs.
  scratch->clear();
  for (std::size_t i = *head; i < wire->size(); ++i) {
    const WireChunk& c = (*wire)[i];
    const std::size_t skip = i == *head ? *off : 0;
    scratch->append(c.data + skip, c.len - skip);
  }
  wire->clear();
  *head = 0;
  *off = 0;
  arena->Reset();
  if (scratch->empty()) return;
  hotpath::CountCopy(scratch->size());
  char* base = arena->Copy(scratch->data(), scratch->size());
  wire->push_back(WireChunk{base, scratch->size()});
}

std::size_t PayloadSize(MsgType t, std::size_t value_size) {
  switch (t) {
    case MsgType::kReadReq:
      return 1 + 8 + 4 + 8;
    case MsgType::kWriteReq:
    case MsgType::kMergeReq:
      return 1 + 8 + 4 + 8 + 4 + value_size;
    case MsgType::kReadResp:
    case MsgType::kStatsResp:
      return 1 + 8 + 4 + value_size;
    case MsgType::kWriteResp:
    case MsgType::kMergeResp:
    case MsgType::kStatsReq:
      return 1 + 8;
    case MsgType::kBatchReq:
    case MsgType::kBatchResp:
      break;  // batches have no fixed size; callers compose them
  }
  assert(false && "PayloadSize: not a non-batch message type");
  return 0;
}

void AppendPayload(FrameWriter& w, MsgType t, std::uint64_t request_id,
                   const RegisterId& reg, std::string_view value) {
  w.PutU8(static_cast<std::uint8_t>(t));
  w.PutU64(request_id);
  switch (t) {
    case MsgType::kReadReq:
      w.PutU32(reg.disk);
      w.PutU64(reg.block);
      break;
    case MsgType::kWriteReq:
    case MsgType::kMergeReq:
      w.PutU32(reg.disk);
      w.PutU64(reg.block);
      w.PutBytesRef(value);
      break;
    case MsgType::kReadResp:
    case MsgType::kStatsResp:
      w.PutBytesRef(value);
      break;
    case MsgType::kWriteResp:
    case MsgType::kMergeResp:
    case MsgType::kStatsReq:
      break;
    case MsgType::kBatchReq:
    case MsgType::kBatchResp:
      assert(false && "AppendPayload: batches are composed by the caller");
      break;
  }
}

// ---------------------------------------------------------------------------
// Zero-copy decode.
// ---------------------------------------------------------------------------

namespace {

/// Decodes one message payload into views. `allow_batch` is false for
/// batch sub-operations (batches never nest).
Expected<MessageView> DecodeViewImpl(std::string_view payload, Arena* arena,
                                     bool allow_batch) {
  Decoder d(payload);
  MessageView m;
  auto type = d.GetU8();
  if (!type) return type.status();
  if (*type < static_cast<std::uint8_t>(MsgType::kReadReq) ||
      *type > static_cast<std::uint8_t>(MsgType::kMergeResp)) {
    return Status::Invalid("message: unknown type");
  }
  m.type = static_cast<MsgType>(*type);
  auto id = d.GetU64();
  if (!id) return id.status();
  m.request_id = *id;

  switch (m.type) {
    case MsgType::kReadReq: {
      auto disk = d.GetU32();
      if (!disk) return disk.status();
      auto block = d.GetU64();
      if (!block) return block.status();
      m.reg = RegisterId{*disk, *block};
      break;
    }
    case MsgType::kWriteReq:
    case MsgType::kMergeReq: {
      auto disk = d.GetU32();
      if (!disk) return disk.status();
      auto block = d.GetU64();
      if (!block) return block.status();
      auto value = d.GetBytesView();
      if (!value) return value.status();
      m.reg = RegisterId{*disk, *block};
      m.value = *value;
      break;
    }
    case MsgType::kReadResp:
    case MsgType::kStatsResp: {
      auto value = d.GetBytesView();
      if (!value) return value.status();
      m.value = *value;
      break;
    }
    case MsgType::kWriteResp:
    case MsgType::kMergeResp:
    case MsgType::kStatsReq:
      break;
    case MsgType::kBatchReq:
    case MsgType::kBatchResp: {
      if (!allow_batch) return Status::Invalid("batch: nested batch");
      auto count = d.GetU32();
      if (!count) return count.status();
      // Each sub-operation costs its length prefix plus the smallest
      // legal payload for this direction; a hostile count cannot make us
      // allocate far beyond what the payload could ever hold.
      const std::size_t min_sub =
          kBatchSubOverhead + (m.type == MsgType::kBatchReq
                                   ? kMinBatchSubRequestBytes
                                   : kMinBatchSubResponseBytes);
      if (*count > d.Remaining() / min_sub) {
        return Status::Invalid("batch: count exceeds payload");
      }
      MessageView* subs = arena->AllocArray<MessageView>(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto sub_bytes = d.GetBytesView();
        if (!sub_bytes) return sub_bytes.status();
        auto sub = DecodeViewImpl(*sub_bytes, arena, /*allow_batch=*/false);
        if (!sub) return sub.status();
        const bool ok = m.type == MsgType::kBatchReq
                            ? IsBatchableRequest(sub->type)
                            : IsBatchableResponse(sub->type);
        if (!ok) return Status::Invalid("batch: sub-operation of wrong type");
        subs[i] = *sub;
      }
      m.subs = subs;
      m.num_subs = *count;
      break;
    }
  }
  if (!d.AtEnd()) return Status::Invalid("message: trailing bytes");
  return m;
}

}  // namespace

Expected<MessageView> DecodeMessageView(std::string_view payload,
                                        Arena* arena) {
  return DecodeViewImpl(payload, arena, /*allow_batch=*/true);
}

Expected<Message> DecodeMessage(std::string_view payload) {
  Decoder d(payload);
  Message m;
  auto type = d.GetU8();
  if (!type) return type.status();
  if (*type < static_cast<std::uint8_t>(MsgType::kReadReq) ||
      *type > static_cast<std::uint8_t>(MsgType::kMergeResp)) {
    return Status::Invalid("message: unknown type");
  }
  m.type = static_cast<MsgType>(*type);
  auto id = d.GetU64();
  if (!id) return id.status();
  m.request_id = *id;

  switch (m.type) {
    case MsgType::kReadReq: {
      auto disk = d.GetU32();
      if (!disk) return disk.status();
      auto block = d.GetU64();
      if (!block) return block.status();
      m.reg = RegisterId{*disk, *block};
      break;
    }
    case MsgType::kWriteReq:
    case MsgType::kMergeReq: {
      auto disk = d.GetU32();
      if (!disk) return disk.status();
      auto block = d.GetU64();
      if (!block) return block.status();
      auto value = d.GetBytes();
      if (!value) return value.status();
      m.reg = RegisterId{*disk, *block};
      m.value = std::move(*value);
      break;
    }
    case MsgType::kReadResp: {
      auto value = d.GetBytes();
      if (!value) return value.status();
      m.value = std::move(*value);
      break;
    }
    case MsgType::kWriteResp:
    case MsgType::kMergeResp:
      break;
    case MsgType::kStatsReq:
      break;
    case MsgType::kStatsResp: {
      auto value = d.GetBytes();
      if (!value) return value.status();
      m.value = std::move(*value);
      break;
    }
    case MsgType::kBatchReq:
    case MsgType::kBatchResp: {
      auto count = d.GetU32();
      if (!count) return count.status();
      // Same pre-reservation bound as the view decoder: length prefix
      // plus the smallest legal sub payload for this direction.
      const std::size_t min_sub =
          kBatchSubOverhead + (m.type == MsgType::kBatchReq
                                   ? kMinBatchSubRequestBytes
                                   : kMinBatchSubResponseBytes);
      if (*count > d.Remaining() / min_sub) {
        return Status::Invalid("batch: count exceeds payload");
      }
      m.subs.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto sub_bytes = d.GetBytes();
        if (!sub_bytes) return sub_bytes.status();
        auto sub = DecodeMessage(*sub_bytes);
        if (!sub) return sub.status();
        const bool ok = m.type == MsgType::kBatchReq
                            ? IsBatchableRequest(sub->type)
                            : IsBatchableResponse(sub->type);
        if (!ok) return Status::Invalid("batch: sub-operation of wrong type");
        m.subs.push_back(std::move(*sub));
      }
      break;
    }
  }
  if (!d.AtEnd()) return Status::Invalid("message: trailing bytes");
  return m;
}

Expected<Endpoint> ParseEndpoint(std::string_view s) {
  Endpoint ep;
  std::string_view port_part = s;
  const auto colon = s.rfind(':');
  if (colon != std::string_view::npos) {
    if (colon == 0) return Status::Invalid("endpoint: empty host");
    ep.host = std::string(s.substr(0, colon));
    port_part = s.substr(colon + 1);
  }
  if (port_part.empty()) return Status::Invalid("endpoint: empty port");
  std::uint32_t port = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9') {
      return Status::Invalid("endpoint: port must be numeric");
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return Status::Invalid("endpoint: port out of range");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

}  // namespace nadreg::nad
