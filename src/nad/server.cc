#include "nad/server.h"

#include <chrono>

#include "common/log.h"
#include "nad/protocol.h"

namespace nadreg::nad {

Expected<std::unique_ptr<NadServer>> NadServer::Start(Options opts) {
  auto listener = Listener::Bind(opts.port, opts.host);
  if (!listener) return listener.status();
  // Cannot use make_unique: the constructor is private.
  std::unique_ptr<NadServer> server(new NadServer(opts));
  if (!opts.data_path.empty()) {
    sim::RegisterStore recovered_store;
    auto recovered = RecoverState(opts.data_path, &recovered_store);
    if (!recovered.ok()) return recovered.status();
    server->store_.Load(recovered_store);
    server->recovered_ = *recovered;
    // Still single-threaded here; the lock only satisfies the guard.
    MutexLock jlock(server->journal_mu_);
    if (Status s = server->journal_.Open(opts.data_path + ".log"); !s.ok()) {
      return s;
    }
  }
  server->port_ = listener->port();
  server->listener_ = std::make_unique<Listener>(std::move(*listener));
  server->accept_thread_ = std::jthread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

NadServer::NadServer(Options opts)
    : opts_(opts),
      rng_(opts.seed),
      reads_served_(&metrics_.GetCounter("nad.server.reads")),
      writes_served_(&metrics_.GetCounter("nad.server.writes")),
      dropped_crashed_(&metrics_.GetCounter("nad.server.dropped_crashed")),
      dropped_faulted_(&metrics_.GetCounter("nad.server.dropped_faulted")),
      read_serve_us_(&metrics_.GetHistogram("nad.server.read_serve_us")),
      write_serve_us_(&metrics_.GetHistogram("nad.server.write_serve_us")),
      batch_size_(&metrics_.GetHistogram("nad.server.batch_size")) {}

NadServer::~NadServer() { Stop(); }

void NadServer::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (Socket* conn : live_conns_) conn->Shutdown();
  }
  fault_cv_.NotifyAll();  // release any connection held by a stall
  if (listener_) listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  conn_threads_.clear();  // joins
}

void NadServer::CrashRegister(const RegisterId& r) { store_.CrashRegister(r); }

void NadServer::CrashDisk(DiskId d) { store_.CrashDisk(d); }

void NadServer::DelayDisk(DiskId /*d*/, std::uint64_t min_us,
                          std::uint64_t max_us) {
  delay_min_override_.store(min_us, std::memory_order_relaxed);
  delay_max_override_.store(max_us, std::memory_order_relaxed);
}

void NadServer::DropRequests(DiskId /*d*/, std::uint32_t permille) {
  drop_permille_.store(permille, std::memory_order_relaxed);
}

void NadServer::DisconnectDisk(DiskId /*d*/) {
  // Sever every established connection but keep listening: unlike a
  // crash this is recoverable — a reconnecting client resumes.
  MutexLock lock(mu_);
  for (Socket* conn : live_conns_) conn->Shutdown();
}

void NadServer::StallDisk(DiskId /*d*/, std::chrono::milliseconds dur) {
  MutexLock lock(mu_);
  const auto until = std::chrono::steady_clock::now() + dur;
  if (until > stall_until_) stall_until_ = until;
}

void NadServer::Heal(DiskId /*d*/) {
  delay_min_override_.store(kNoDelayOverride, std::memory_order_relaxed);
  delay_max_override_.store(kNoDelayOverride, std::memory_order_relaxed);
  drop_permille_.store(0, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    stall_until_ = std::chrono::steady_clock::time_point{};
  }
  fault_cv_.NotifyAll();  // release requests held by a cleared stall
}

Status NadServer::Checkpoint() {
  {
    MutexLock jlock(journal_mu_);
    if (!journal_.IsOpen()) return Status::Ok();  // volatile server
  }
  // Quiesce every stripe so no write can journal between the snapshot
  // and the journal truncation (it would be lost on recovery). Lock
  // order matches the write path: stripes first, then the journal.
  auto stripes = store_.LockAll();
  MutexLock jlock(journal_mu_);
  if (Status s = WriteCheckpoint(opts_.data_path, stripes.Snapshot());
      !s.ok()) {
    return s;
  }
  return journal_.Reset();
}

std::uint64_t NadServer::ServedCount() const {
  return served_.load(std::memory_order_relaxed);
}

void NadServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_->Accept();
    if (!conn) return;  // listener shut down
    MutexLock lock(mu_);
    if (stopping_) return;
    Rng conn_rng = rng_.Fork();
    conn_threads_.emplace_back(
        [this, c = std::move(*conn), r = conn_rng]() mutable {
          Serve(std::move(c), r);
        });
  }
}

std::optional<Message> NadServer::ServeOp(Message msg) {
  const auto serve_start = std::chrono::steady_clock::now();
  if (store_.IsCrashed(msg.reg)) {
    // Unresponsive failure mode: swallow the request. The client can
    // never distinguish this from a slow disk.
    dropped_crashed_->Inc();
    return std::nullopt;
  }
  Message resp;
  resp.request_id = msg.request_id;
  if (msg.type == MsgType::kWriteReq) {
    // Write-ahead: a write is journaled before it is acknowledged, so a
    // restart never forgets an acknowledged write. Journal order and
    // apply order agree per register (both under the stripe lock).
    const bool applied =
        store_.ApplyOrdered(msg.reg, std::move(msg.value), [&](const Value& v) {
          // Stripe lock is held here; journal_mu_ nests inside it (the
          // documented stripe -> journal order, same as Checkpoint).
          MutexLock jlock(journal_mu_);
          if (!journal_.IsOpen()) return true;
          if (Status s = journal_.Append(msg.reg, v); !s.ok()) {
            LOG_ERROR << "nad-server: journal append failed: " << s.ToString()
                      << "; dropping request";
            return false;
          }
          return true;
        });
    if (!applied) return std::nullopt;  // unresponsive, like a failing disk
    resp.type = MsgType::kWriteResp;
    writes_served_->Inc();
    write_serve_us_->ObserveSince(serve_start);
  } else {
    resp.type = MsgType::kReadResp;
    resp.value = store_.Get(msg.reg);  // linearization
    reads_served_->Inc();
    read_serve_us_->ObserveSince(serve_start);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

void NadServer::Serve(Socket conn, Rng rng) {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    live_conns_.push_back(&conn);
  }
  for (;;) {
    auto payload = RecvFrame(conn, kMaxFrameBytes);
    if (!payload) break;  // closed or malformed length
    auto msg = DecodeMessage(*payload);
    if (!msg) {
      LOG_WARN << "nad-server: dropping malformed request: "
               << msg.status().ToString();
      continue;
    }
    if (msg->type == MsgType::kStatsReq) {
      // Out-of-band observability: answered immediately (no artificial
      // delay, no crash check — STATS is not a disk operation).
      Message resp;
      resp.request_id = msg->request_id;
      resp.type = MsgType::kStatsResp;
      std::string text = metrics_.ToText();
      text += "counter nad.server.served " + std::to_string(ServedCount()) +
              "\n";
      text += "counter nad.server.recovered " + std::to_string(recovered_) +
              "\n";
      resp.value = std::move(text);
      if (!SendFrame(conn, EncodeMessage(resp)).ok()) break;
      continue;
    }
    if (msg->type != MsgType::kReadReq && msg->type != MsgType::kWriteReq &&
        msg->type != MsgType::kBatchReq) {
      LOG_WARN << "nad-server: dropping non-request message";
      continue;
    }
    // Fault filter (before ServeOp): a stalled daemon HOLDS the request
    // until the stall elapses; a lossy daemon DROPS it. STATS is exempt —
    // it is observability, not a disk operation.
    {
      mu_.Lock();
      while (!stopping_ &&
             stall_until_ > std::chrono::steady_clock::now()) {
        const auto until = stall_until_;
        fault_cv_.WaitUntil(mu_, until, [&] {
          mu_.AssertHeld();  // CondVar waits run predicates under the lock
          return stopping_ || stall_until_ < until;  // Heal cleared it
        });
      }
      const bool stop_now = stopping_;
      mu_.Unlock();
      if (stop_now) break;
    }
    if (const auto drop = drop_permille_.load(std::memory_order_relaxed);
        drop > 0 && rng.Chance(drop, 1000)) {
      dropped_faulted_->Inc();
      continue;
    }
    std::uint64_t min_delay = opts_.min_delay_us;
    std::uint64_t max_delay = opts_.max_delay_us;
    if (const auto omax = delay_max_override_.load(std::memory_order_relaxed);
        omax != kNoDelayOverride) {
      min_delay = delay_min_override_.load(std::memory_order_relaxed);
      max_delay = omax;
    }
    if (max_delay > 0) {
      // One frame = one disk request; a batch is one vectored operation.
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.Between(min_delay, max_delay)));
    }
    if (msg->type == MsgType::kBatchReq) {
      batch_size_->Observe(msg->subs.size());
      Message resp;
      resp.type = MsgType::kBatchResp;
      resp.subs.reserve(msg->subs.size());
      for (Message& sub : msg->subs) {
        // A crashed register omits its sub-response; the others answer.
        if (auto sub_resp = ServeOp(std::move(sub))) {
          resp.subs.push_back(std::move(*sub_resp));
        }
      }
      // Every sub-operation crashed: stay silent, like the per-op path.
      if (resp.subs.empty()) continue;
      if (!SendFrame(conn, EncodeMessage(resp)).ok()) break;
      continue;
    }
    auto resp = ServeOp(std::move(*msg));
    if (!resp) continue;
    if (!SendFrame(conn, EncodeMessage(*resp)).ok()) break;
  }
  MutexLock lock(mu_);
  std::erase(live_conns_, &conn);
}

}  // namespace nadreg::nad
