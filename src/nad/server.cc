#include "nad/server.h"

#include <chrono>

#include "common/hotpath_stats.h"
#include "common/log.h"
#include "nad/protocol.h"

namespace nadreg::nad {

Expected<std::unique_ptr<NadServer>> NadServer::Start(Options opts) {
  auto listener = Listener::Bind(opts.port, opts.host);
  if (!listener) return listener.status();
  // Cannot use make_unique: the constructor is private.
  std::unique_ptr<NadServer> server(new NadServer(opts));
  if (!opts.data_path.empty()) {
    sim::RegisterStore recovered_store;
    auto recovered = RecoverState(opts.data_path, &recovered_store);
    if (!recovered.ok()) return recovered.status();
    server->store_.Load(recovered_store);
    server->recovered_ = *recovered;
    // Still single-threaded here; the lock only satisfies the guard.
    MutexLock jlock(server->journal_mu_);
    if (Status s = server->journal_.Open(opts.data_path + ".log"); !s.ok()) {
      return s;
    }
  }
  server->port_ = listener->port();
  server->listener_ = std::make_unique<Listener>(std::move(*listener));
  server->accept_thread_ = std::jthread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

NadServer::NadServer(Options opts)
    : opts_(opts),
      rng_(opts.seed),
      reads_served_(&metrics_.GetCounter("nad.server.reads")),
      writes_served_(&metrics_.GetCounter("nad.server.writes")),
      merges_served_(&metrics_.GetCounter("nad.server.merges")),
      dropped_crashed_(&metrics_.GetCounter("nad.server.dropped_crashed")),
      dropped_faulted_(&metrics_.GetCounter("nad.server.dropped_faulted")),
      read_serve_us_(&metrics_.GetHistogram("nad.server.read_serve_us")),
      write_serve_us_(&metrics_.GetHistogram("nad.server.write_serve_us")),
      batch_size_(&metrics_.GetHistogram("nad.server.batch_size")) {}

NadServer::~NadServer() { Stop(); }

void NadServer::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (Socket* conn : live_conns_) conn->Shutdown();
  }
  fault_cv_.NotifyAll();  // release any connection held by a stall
  if (listener_) listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  conn_threads_.clear();  // joins
}

void NadServer::CrashRegister(const RegisterId& r) { store_.CrashRegister(r); }

void NadServer::CrashDisk(DiskId d) { store_.CrashDisk(d); }

void NadServer::DelayDisk(DiskId /*d*/, std::uint64_t min_us,
                          std::uint64_t max_us) {
  delay_min_override_.store(min_us, std::memory_order_relaxed);
  delay_max_override_.store(max_us, std::memory_order_relaxed);
}

void NadServer::DropRequests(DiskId /*d*/, std::uint32_t permille) {
  drop_permille_.store(permille, std::memory_order_relaxed);
}

void NadServer::DisconnectDisk(DiskId /*d*/) {
  // Sever every established connection but keep listening: unlike a
  // crash this is recoverable — a reconnecting client resumes.
  MutexLock lock(mu_);
  for (Socket* conn : live_conns_) conn->Shutdown();
}

void NadServer::StallDisk(DiskId /*d*/, std::chrono::milliseconds dur) {
  MutexLock lock(mu_);
  const auto until = std::chrono::steady_clock::now() + dur;
  if (until > stall_until_) stall_until_ = until;
}

void NadServer::Heal(DiskId /*d*/) {
  delay_min_override_.store(kNoDelayOverride, std::memory_order_relaxed);
  delay_max_override_.store(kNoDelayOverride, std::memory_order_relaxed);
  drop_permille_.store(0, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    stall_until_ = std::chrono::steady_clock::time_point{};
  }
  fault_cv_.NotifyAll();  // release requests held by a cleared stall
}

Status NadServer::Checkpoint() {
  {
    MutexLock jlock(journal_mu_);
    if (!journal_.IsOpen()) return Status::Ok();  // volatile server
  }
  // Quiesce every stripe so no write can journal between the snapshot
  // and the journal truncation (it would be lost on recovery). Lock
  // order matches the write path: stripes first, then the journal.
  auto stripes = store_.LockAll();
  MutexLock jlock(journal_mu_);
  if (Status s = WriteCheckpoint(opts_.data_path, stripes.Snapshot());
      !s.ok()) {
    return s;
  }
  return journal_.Reset();
}

std::uint64_t NadServer::ServedCount() const {
  return served_.load(std::memory_order_relaxed);
}

void NadServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_->Accept();
    if (!conn) return;  // listener shut down
    MutexLock lock(mu_);
    if (stopping_) return;
    Rng conn_rng = rng_.Fork();
    conn_threads_.emplace_back(
        [this, c = std::move(*conn), r = conn_rng]() mutable {
          Serve(std::move(c), r);
        });
  }
}

bool NadServer::ServeOpView(const MessageView& msg, FrameWriter* w,
                            bool in_batch) {
  const auto serve_start = std::chrono::steady_clock::now();
  // hot-path-begin(server-op)
  if (store_.IsCrashed(msg.reg)) {
    // Unresponsive failure mode: swallow the request. The client can
    // never distinguish this from a slow disk.
    dropped_crashed_->Inc();
    return false;
  }
  if (msg.type == MsgType::kWriteReq) {
    // Write-ahead: a write is journaled before it is acknowledged, so a
    // restart never forgets an acknowledged write. Journal order and
    // apply order agree per register (both under the stripe lock). The
    // value is a view into the receive buffer the whole way down —
    // journaled from it, then assigned into the register's existing
    // string capacity (the one write-path copy).
    const bool applied =
        store_.ApplyOrderedView(msg.reg, msg.value, [&](std::string_view v) {
          // Stripe lock is held here; journal_mu_ nests inside it (the
          // documented stripe -> journal order, same as Checkpoint).
          MutexLock jlock(journal_mu_);
          if (!journal_.IsOpen()) return true;
          if (Status s = journal_.Append(msg.reg, v); !s.ok()) {
            LOG_ERROR << "nad-server: journal append failed: " << s.ToString()
                      << "; dropping request";
            return false;
          }
          return true;
        });
    if (!applied) return false;  // unresponsive, like a failing disk
    hotpath::CountCopy(msg.value.size());  // the store materialized it
    if (in_batch) {
      w->PutU32(
          static_cast<std::uint32_t>(PayloadSize(MsgType::kWriteResp, 0)));
    }
    AppendPayload(*w, MsgType::kWriteResp, msg.request_id, msg.reg, {});
    writes_served_->Inc();
    write_serve_us_->ObserveSince(serve_start);
  } else if (msg.type == MsgType::kMergeReq) {
    // Coded-cell join: the delta stays a view into the receive buffer;
    // the merged cell is computed and journaled under the stripe lock
    // (same write-ahead + stripe -> journal order as a plain write, but
    // the journal records the POST-merge cell so replay is a plain
    // Apply).
    const bool applied =
        store_.MergeOrderedView(msg.reg, msg.value, [&](std::string_view v) {
          MutexLock jlock(journal_mu_);
          if (!journal_.IsOpen()) return true;
          if (Status s = journal_.Append(msg.reg, v); !s.ok()) {
            LOG_ERROR << "nad-server: journal append failed: " << s.ToString()
                      << "; dropping request";
            return false;
          }
          return true;
        });
    if (!applied) return false;
    if (in_batch) {
      w->PutU32(
          static_cast<std::uint32_t>(PayloadSize(MsgType::kMergeResp, 0)));
    }
    AppendPayload(*w, MsgType::kMergeResp, msg.request_id, msg.reg, {});
    merges_served_->Inc();
    write_serve_us_->ObserveSince(serve_start);
  } else {
    // Copy the value out of the store into the response arena under the
    // stripe lock (linearization) — the one read-path copy; the response
    // frame references the arena bytes, never a fresh Value.
    std::string_view value;
    store_.View(msg.reg, [&](const Value& v) {
      hotpath::CountCopy(v.size());
      value = std::string_view(w->arena()->Copy(v.data(), v.size()), v.size());
    });
    if (in_batch) {
      w->PutU32(static_cast<std::uint32_t>(
          PayloadSize(MsgType::kReadResp, value.size())));
    }
    AppendPayload(*w, MsgType::kReadResp, msg.request_id, msg.reg, value);
    reads_served_->Inc();
    read_serve_us_->ObserveSince(serve_start);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return true;
  // hot-path-end
}

void NadServer::Serve(Socket conn, Rng rng) {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    live_conns_.push_back(&conn);
  }
  // Per-connection serve state (DESIGN.md §14): frames are read through
  // `reader` (one recv can deliver many frames), decoded into views over
  // its buffer, and answered as WireChunks — headers and read values in
  // `arena`, gathered out with one sendmsg. Arena and chunk list reset
  // per request frame.
  FrameReader reader;
  Arena arena;
  std::vector<WireChunk> chunks;
  std::vector<iovec> iov;
  const auto send_chunks = [&conn, &chunks, &iov]() -> bool {
    iov.clear();
    iov.reserve(chunks.size());
    for (const WireChunk& c : chunks) {
      iov.push_back(iovec{const_cast<char*>(c.data), c.len});
    }
    return SendAllVec(conn, iov.data(), iov.size()).ok();
  };
  for (;;) {
    arena.Reset();
    chunks.clear();
    auto payload = reader.Next(conn, kMaxFrameBytes);
    if (!payload) break;  // closed or malformed length
    auto msg = DecodeMessageView(*payload, &arena);
    if (!msg) {
      LOG_WARN << "nad-server: dropping malformed request: "
               << msg.status().ToString();
      continue;
    }
    if (msg->type == MsgType::kStatsReq) {
      // Out-of-band observability: answered immediately (no artificial
      // delay, no crash check — STATS is not a disk operation).
      Message resp;
      resp.request_id = msg->request_id;
      resp.type = MsgType::kStatsResp;
      std::string text = metrics_.ToText();
      text += "counter nad.server.served " + std::to_string(ServedCount()) +
              "\n";
      text += "counter nad.server.recovered " + std::to_string(recovered_) +
              "\n";
      resp.value = std::move(text);
      if (!SendFrame(conn, EncodeMessage(resp)).ok()) break;
      continue;
    }
    if (msg->type != MsgType::kReadReq && msg->type != MsgType::kWriteReq &&
        msg->type != MsgType::kMergeReq && msg->type != MsgType::kBatchReq) {
      LOG_WARN << "nad-server: dropping non-request message";
      continue;
    }
    // Fault filter (before ServeOp): a stalled daemon HOLDS the request
    // until the stall elapses; a lossy daemon DROPS it. STATS is exempt —
    // it is observability, not a disk operation.
    {
      mu_.Lock();
      while (!stopping_ &&
             stall_until_ > std::chrono::steady_clock::now()) {
        const auto until = stall_until_;
        fault_cv_.WaitUntil(mu_, until, [&] {
          mu_.AssertHeld();  // CondVar waits run predicates under the lock
          return stopping_ || stall_until_ < until;  // Heal cleared it
        });
      }
      const bool stop_now = stopping_;
      mu_.Unlock();
      if (stop_now) break;
    }
    if (const auto drop = drop_permille_.load(std::memory_order_relaxed);
        drop > 0 && rng.Chance(drop, 1000)) {
      dropped_faulted_->Inc();
      continue;
    }
    std::uint64_t min_delay = opts_.min_delay_us;
    std::uint64_t max_delay = opts_.max_delay_us;
    if (const auto omax = delay_max_override_.load(std::memory_order_relaxed);
        omax != kNoDelayOverride) {
      min_delay = delay_min_override_.load(std::memory_order_relaxed);
      max_delay = omax;
    }
    if (max_delay > 0) {
      // One frame = one disk request; a batch is one vectored operation.
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.Between(min_delay, max_delay)));
    }
    // hot-path-begin(server-serve)
    if (msg->type == MsgType::kBatchReq) {
      batch_size_->Observe(msg->num_subs);
      FrameWriter w(&arena, &chunks);
      w.BeginFrame();
      w.PutU8(static_cast<std::uint8_t>(MsgType::kBatchResp));
      w.PutU64(0);
      // The survivor count is known only after serving (a crashed
      // register omits its sub-response): reserve the slot, patch later.
      char* count_slot = w.PutSlotU32();
      std::uint32_t survivors = 0;
      for (std::uint32_t i = 0; i < msg->num_subs; ++i) {
        // A crashed register omits its sub-response; the others answer.
        if (ServeOpView(msg->subs[i], &w, /*in_batch=*/true)) ++survivors;
      }
      w.EndFrame();
      // Every sub-operation crashed: stay silent, like the per-op path.
      if (survivors == 0) continue;
      FrameWriter::Patch32(count_slot, survivors);
      if (!send_chunks()) break;
      continue;
    }
    FrameWriter w(&arena, &chunks);
    w.BeginFrame();
    const bool answered = ServeOpView(*msg, &w, /*in_batch=*/false);
    w.EndFrame();
    if (!answered) continue;
    if (!send_chunks()) break;
    // hot-path-end
  }
  MutexLock lock(mu_);
  std::erase(live_conns_, &conn);
}

}  // namespace nadreg::nad
