#include "nad/persistence.h"

#include <cstdio>
#include <filesystem>

#include "common/codec.h"

namespace nadreg::nad {

namespace {

std::string EncodeRecord(const RegisterId& r, std::string_view v) {
  std::string out;
  Encoder e(&out);
  e.PutU32(r.disk);
  e.PutU64(r.block);
  e.PutBytes(v);
  return out;
}

/// Reads the whole file and applies complete records to the store.
/// Returns records applied; a torn trailing record is discarded.
Expected<std::size_t> ReplayFile(const std::string& path,
                                 sim::RegisterStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::size_t{0};  // missing file: fresh state
  std::string contents;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Unavailable("read failed: " + path);

  Decoder d(contents);
  std::size_t applied = 0;
  while (!d.AtEnd()) {
    auto disk = d.GetU32();
    if (!disk) break;  // torn tail
    auto block = d.GetU64();
    if (!block) break;
    auto value = d.GetBytes();
    if (!value) break;
    store->Apply(RegisterId{*disk, *block}, std::move(*value));
    ++applied;
  }
  return applied;
}

}  // namespace

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Journal::Open(const std::string& path) {
  path_ = path;
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open journal: " + path);
  }
  return Status::Ok();
}

Status Journal::Append(const RegisterId& r, std::string_view v) {
  if (file_ == nullptr) return Status::Unavailable("journal not open");
  const std::string record = EncodeRecord(r, v);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Unavailable("journal append failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Unavailable("journal flush failed");
  }
  return Status::Ok();
}

Status Journal::Reset() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path_.c_str(), "wb");  // truncate
  if (file_ == nullptr) {
    return Status::Unavailable("cannot truncate journal: " + path_);
  }
  return Status::Ok();
}

Expected<std::size_t> RecoverState(const std::string& base_path,
                                   sim::RegisterStore* store) {
  auto snap = ReplayFile(base_path + ".snap", store);
  if (!snap.ok()) return snap.status();
  auto log = ReplayFile(base_path + ".log", store);
  if (!log.ok()) return log.status();
  return *snap + *log;
}

Status WriteCheckpoint(const std::string& base_path,
                       const sim::RegisterStore& store) {
  const std::string tmp = base_path + ".snap.tmp";
  const std::string final_path = base_path + ".snap";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Unavailable("cannot open " + tmp);
  for (const auto& [reg, value] : store.Values()) {
    const std::string record = EncodeRecord(reg, value);
    if (std::fwrite(record.data(), 1, record.size(), f) != record.size()) {
      std::fclose(f);
      return Status::Unavailable("checkpoint write failed");
    }
  }
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    return Status::Unavailable("checkpoint flush failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) return Status::Unavailable("checkpoint rename failed: " + ec.message());
  return Status::Ok();
}

}  // namespace nadreg::nad
