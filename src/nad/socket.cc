#include "nad/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nadreg::nad {

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Expected<Listener> Listener::Bind(std::uint16_t port, const std::string& host) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int opt = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("bind: bad host address " + host);
  }
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(sock.fd(), 64) != 0) {
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Unavailable(std::string("getsockname: ") +
                               std::strerror(errno));
  }
  return Listener(std::move(sock), ntohs(addr.sin_port));
}

Expected<Socket> Listener::Accept() {
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    return Status::Unavailable(std::string("accept: ") + std::strerror(errno));
  }
  int opt = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  return Socket(fd);
}

Expected<Socket> Connect(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("connect: bad host address " + host);
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(std::string("connect: ") + std::strerror(errno));
  }
  int opt = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  return sock;
}

Status SetNonBlocking(const Socket& sock) {
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Unavailable(std::string("fcntl(O_NONBLOCK): ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

Expected<Socket> StartConnect(const std::string& host, std::uint16_t port,
                              bool* connected) {
  *connected = false;
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  if (Status s = SetNonBlocking(sock); !s.ok()) return s;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("connect: bad host address " + host);
  }
  int opt = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    *connected = true;
    return sock;
  }
  if (errno == EINPROGRESS || errno == EINTR) return sock;
  return Status::Unavailable(std::string("connect: ") + std::strerror(errno));
}

Status FinishConnect(const Socket& sock) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return Status::Unavailable(std::string("getsockopt(SO_ERROR): ") +
                               std::strerror(errno));
  }
  if (err != 0) {
    return Status::Unavailable(std::string("connect: ") + std::strerror(err));
  }
  return Status::Ok();
}

Status SendSome(const Socket& sock, const iovec* iov, std::size_t iov_count,
                std::size_t* sent) {
  *sent = 0;
  for (;;) {
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(sock.fd(), &msg, MSG_NOSIGNAL);
    if (n >= 0) {
      *sent = static_cast<std::size_t>(n);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::Unavailable(std::string("sendmsg: ") +
                               std::strerror(errno));
  }
}

Status RecvSome(const Socket& sock, char* buf, std::size_t len,
                std::size_t* got) {
  *got = 0;
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, len, 0);
    if (n > 0) {
      *got = static_cast<std::size_t>(n);
      return Status::Ok();
    }
    if (n == 0) return Status::Unavailable("recv: connection closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Status SendAll(const Socket& sock, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(sock.fd(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable("send: peer closed or error");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status SendFrame(const Socket& sock, std::string_view payload) {
  std::string frame;
  AppendFrame(&frame, payload);
  return SendAll(sock, frame);
}

void AppendFrame(std::string* wire, std::string_view payload) {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char hdr[4];
  std::memcpy(hdr, &len, 4);
  wire->reserve(wire->size() + 4 + payload.size());
  wire->append(hdr, 4);
  wire->append(payload);
}

namespace {
Status RecvExact(const Socket& sock, char* buf, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(sock.fd(), buf + got, want - got, 0);
    if (n == 0) return Status::Unavailable("recv: connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv: error");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}
}  // namespace

Expected<std::string> RecvFrame(const Socket& sock, std::uint32_t max_bytes) {
  char hdr[4];
  if (Status s = RecvExact(sock, hdr, 4); !s.ok()) return s;
  std::uint32_t len = 0;
  std::memcpy(&len, hdr, 4);
  if (len > max_bytes) return Status::Invalid("frame exceeds maximum size");
  std::string payload(len, '\0');
  if (Status s = RecvExact(sock, payload.data(), len); !s.ok()) return s;
  return payload;
}

}  // namespace nadreg::nad
