#include "nad/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/hotpath_stats.h"

namespace nadreg::nad {

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Expected<Listener> Listener::Bind(std::uint16_t port, const std::string& host) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int opt = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("bind: bad host address " + host);
  }
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(sock.fd(), 64) != 0) {
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Unavailable(std::string("getsockname: ") +
                               std::strerror(errno));
  }
  return Listener(std::move(sock), ntohs(addr.sin_port));
}

Expected<Socket> Listener::Accept() {
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    return Status::Unavailable(std::string("accept: ") + std::strerror(errno));
  }
  int opt = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  return Socket(fd);
}

Expected<Socket> Connect(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("connect: bad host address " + host);
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(std::string("connect: ") + std::strerror(errno));
  }
  int opt = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  return sock;
}

Status SetNonBlocking(const Socket& sock) {
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Unavailable(std::string("fcntl(O_NONBLOCK): ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

Expected<Socket> StartConnect(const std::string& host, std::uint16_t port,
                              bool* connected) {
  *connected = false;
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  if (Status s = SetNonBlocking(sock); !s.ok()) return s;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("connect: bad host address " + host);
  }
  int opt = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    *connected = true;
    return sock;
  }
  if (errno == EINPROGRESS || errno == EINTR) return sock;
  return Status::Unavailable(std::string("connect: ") + std::strerror(errno));
}

Status FinishConnect(const Socket& sock) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return Status::Unavailable(std::string("getsockopt(SO_ERROR): ") +
                               std::strerror(errno));
  }
  if (err != 0) {
    return Status::Unavailable(std::string("connect: ") + std::strerror(err));
  }
  return Status::Ok();
}

Status SendSome(const Socket& sock, const iovec* iov, std::size_t iov_count,
                std::size_t* sent) {
  *sent = 0;
  for (;;) {
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(sock.fd(), &msg, MSG_NOSIGNAL);
    if (n >= 0) {
      *sent = static_cast<std::size_t>(n);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::Unavailable(std::string("sendmsg: ") +
                               std::strerror(errno));
  }
}

Status RecvSome(const Socket& sock, char* buf, std::size_t len,
                std::size_t* got) {
  *got = 0;
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, len, 0);
    if (n > 0) {
      *got = static_cast<std::size_t>(n);
      return Status::Ok();
    }
    if (n == 0) return Status::Unavailable("recv: connection closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Status SendAll(const Socket& sock, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(sock.fd(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable("send: peer closed or error");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status SendFrame(const Socket& sock, std::string_view payload) {
  std::string frame;
  AppendFrame(&frame, payload);
  return SendAll(sock, frame);
}

void AppendFrame(std::string* wire, std::string_view payload) {
  hotpath::CountCopy(payload.size());
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char hdr[4];
  std::memcpy(hdr, &len, 4);
  wire->reserve(wire->size() + 4 + payload.size());
  wire->append(hdr, 4);
  wire->append(payload);
}

namespace {
Status RecvExact(const Socket& sock, char* buf, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(sock.fd(), buf + got, want - got, 0);
    if (n == 0) return Status::Unavailable("recv: connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv: error");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}
}  // namespace

Expected<std::string> RecvFrame(const Socket& sock, std::uint32_t max_bytes) {
  char hdr[4];
  if (Status s = RecvExact(sock, hdr, 4); !s.ok()) return s;
  std::uint32_t len = 0;
  std::memcpy(&len, hdr, 4);
  if (len > max_bytes) return Status::Invalid("frame exceeds maximum size");
  std::string payload(len, '\0');
  if (Status s = RecvExact(sock, payload.data(), len); !s.ok()) return s;
  return payload;
}

void RxBuffer::EnsureTail(std::size_t n) {
  if (cap_ - tail_ >= n) return;
  const std::size_t live = tail_ - head_;
  if (head_ > 0 && cap_ - live >= n) {
    // Compact in place: slide the unconsumed bytes to the front. Rare —
    // Consume rewinds for free whenever the buffer fully drains.
    hotpath::CountCopy(live);
    std::memmove(buf_.get(), buf_.get() + head_, live);
  } else {
    std::size_t cap = cap_ == 0 ? 64 * 1024 : cap_ * 2;
    while (cap - live < n) cap *= 2;
    auto grown = std::make_unique<char[]>(cap);
    if (live > 0) {
      hotpath::CountCopy(live);
      std::memcpy(grown.get(), buf_.get() + head_, live);
    }
    buf_ = std::move(grown);
    cap_ = cap;
  }
  head_ = 0;
  tail_ = live;
}

Expected<std::string_view> FrameReader::Next(const Socket& sock,
                                             std::uint32_t max_bytes) {
  buf_.Consume(consumed_next_);  // the frame returned last call
  consumed_next_ = 0;
  for (;;) {
    if (buf_.Size() >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, buf_.Head(), 4);
      if (len > max_bytes) {
        return Status::Invalid("frame exceeds maximum size");
      }
      if (buf_.Size() >= 4 + static_cast<std::size_t>(len)) {
        consumed_next_ = 4 + static_cast<std::size_t>(len);
        return std::string_view(buf_.Head() + 4, len);
      }
      // Everything up to the full frame must fit contiguously.
      buf_.EnsureTail(4 + static_cast<std::size_t>(len) - buf_.Size());
    } else {
      buf_.EnsureTail(64 * 1024);
    }
    // Blocking fill: take whatever the socket has (≥ 1 byte).
    std::size_t got = 0;
    for (;;) {
      const ssize_t r = ::recv(sock.fd(), buf_.Tail(), buf_.TailCapacity(), 0);
      if (r > 0) {
        got = static_cast<std::size_t>(r);
        break;
      }
      if (r == 0) return Status::Unavailable("recv: connection closed");
      if (errno == EINTR) continue;
      return Status::Unavailable("recv: error");
    }
    buf_.Commit(got);
  }
}

Status SendAllVec(const Socket& sock, iovec* iov, std::size_t iov_count) {
  std::size_t first = 0;
  while (first < iov_count) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    // IOV_MAX-safe: a huge batch response simply takes several sendmsg
    // calls.
    msg.msg_iovlen = std::min<std::size_t>(iov_count - first, 1024);
    const ssize_t n = ::sendmsg(sock.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("sendmsg: ") +
                                 std::strerror(errno));
    }
    std::size_t sent = static_cast<std::size_t>(n);
    while (first < iov_count && sent >= iov[first].iov_len) {
      sent -= iov[first].iov_len;
      ++first;
    }
    if (first < iov_count) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + sent;
      iov[first].iov_len -= sent;
    }
  }
  return Status::Ok();
}

}  // namespace nadreg::nad
