/// \file
/// Lock-cheap metrics primitives and a process-wide registry.
///
/// Every layer of the stack (nad client/server, the quorum engine, the
/// emulation phases, the workload harness) records into these so a bench or
/// demo run can emit a machine-readable artifact of *where the time went*:
/// quorum waits, pending-write queueing, snapshot collect passes, RPC
/// round trips. The hot-path cost is one relaxed atomic RMW per event —
/// registration (the only locking path) happens once per metric name and
/// callers cache the returned reference.
///
/// Three instrument kinds, mirroring what register-emulation papers report
/// (cf. "On the Practicality of Atomic MWMR Register Implementations"):
///
///   Counter    monotonic u64 (ops issued, adoptions, timeouts, ...)
///   Gauge      i64 level with a high-watermark (in-flight depth, queue depth)
///   Histogram  fixed power-of-two latency buckets in microseconds, with
///              count/sum/max and approximate percentiles
#pragma once

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/sync.h"

namespace nadreg::obs {

/// Monotonically increasing event count. Thread-safe; relaxed ordering is
/// enough because metrics are advisory, never synchronization.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A level that can go up and down, tracking its high-watermark.
class Gauge {
 public:
  void Add(std::int64_t delta) {
    const std::int64_t now = v_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }
  void Set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  std::int64_t Get() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(std::int64_t now) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Latency histogram with fixed power-of-two buckets (microseconds).
/// Bucket i counts observations with value <= 2^i us; the last bucket is
/// the overflow (+inf) bucket. 26 finite buckets cover 1us .. ~33s.
class Histogram {
 public:
  static constexpr std::size_t kFiniteBuckets = 26;
  static constexpr std::size_t kBuckets = kFiniteBuckets + 1;

  void Observe(std::uint64_t us) {
    buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
    while (us > seen && !max_us_.compare_exchange_weak(
                            seen, us, std::memory_order_relaxed)) {
    }
  }
  void ObserveSince(std::chrono::steady_clock::time_point start) {
    Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t SumUs() const { return sum_us_.load(std::memory_order_relaxed); }
  std::uint64_t MaxUs() const { return max_us_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (us) of bucket i; the overflow bucket reports MaxUs().
  std::uint64_t BucketUpperUs(std::size_t i) const {
    return i < kFiniteBuckets ? (1ULL << i) : MaxUs();
  }
  /// Approximate percentile (upper bound of the bucket holding the p-th
  /// observation), p in [0, 100]. Returns 0 for an empty histogram.
  std::uint64_t PercentileUs(double p) const;

  static std::size_t BucketIndex(std::uint64_t us) {
    std::size_t i = 0;
    while (i < kFiniteBuckets && us > (1ULL << i)) ++i;
    return i;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Names metrics and hands out stable references. Lookups lock; returned
/// references stay valid for the registry's lifetime, so callers resolve
/// once and then record lock-free.
class Registry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All metrics as a JSON document (the bench artifact format).
  std::string ToJson() const;
  /// All metrics as "kind name value..." lines (the STATS opcode format).
  std::string ToText() const;
  Status WriteJsonFile(const std::string& path) const;

  /// The process-wide registry every built-in instrumentation point uses.
  static Registry& Global();

 private:
  mutable Mutex mu_;
  // The maps are guarded; the pointed-to instruments are lock-free and
  // stay valid (and freely recordable) outside the lock.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace nadreg::obs
