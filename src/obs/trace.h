/// \file
/// Structured operation tracing: a process-global JSONL sink emitting
/// chrome://tracing "complete" events (ph "X"), so a bench or demo run can
/// be opened in chrome://tracing / Perfetto and read phase by phase —
/// choose-value vs wait in the SWMR READ, collect passes in the name
/// snapshot, write-backs, RPC round trips.
///
/// The sink is off by default; when off, a span costs one relaxed atomic
/// load. StartTrace/StopTrace bracket a capture. The output is a strict
/// JSON array (one event per line), which both chrome://tracing and plain
/// JSON tooling accept.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace nadreg::obs {

/// Opens `path` and starts capturing trace events process-wide.
/// Fails (kUnavailable) if the file cannot be opened; restarting an
/// active trace closes the previous file first.
Status StartTrace(const std::string& path);

/// Stops capturing and closes the file (no-op when not tracing).
void StopTrace();

/// True while a trace capture is active.
bool TraceActive();

/// Emits one complete event covering [start, end). `cat` and `name` feed
/// the chrome://tracing category/title; no-op when not tracing.
void EmitSpan(std::string_view cat, std::string_view name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

/// RAII phase probe: times a scope into an optional latency histogram
/// (always, tracing or not) and emits a trace span when a capture is
/// active. The workhorse of per-phase instrumentation:
///
///   obs::ScopedPhase phase(&hist_wait_, "swmr", "wait", opts.label);
class ScopedPhase {
 public:
  /// `hist` may be null (trace-only span). `label`, when non-empty, is
  /// appended to the span title as "name:label".
  ScopedPhase(Histogram* hist, std::string_view cat, std::string_view name,
              std::string_view label = {});
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  /// Elapsed time so far.
  std::chrono::microseconds Elapsed() const;

 private:
  Histogram* hist_;
  bool traced_;
  std::string_view cat_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nadreg::obs
