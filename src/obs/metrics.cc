#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace nadreg::obs {

std::uint64_t Histogram::PercentileUs(double p) const {
  const std::uint64_t n = Count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const auto target =
      static_cast<std::uint64_t>(static_cast<double>(n) * p / 100.0);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += BucketCount(i);
    if (seen > target || (seen == n && seen >= target)) return BucketUpperUs(i);
  }
  return MaxUs();
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::ToJson() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->Get();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"value\": "
        << g->Get() << ", \"max\": " << g->Max() << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
        << h->Count() << ", \"sum_us\": " << h->SumUs() << ", \"max_us\": "
        << h->MaxUs() << ", \"p50_us\": " << h->PercentileUs(50)
        << ", \"p90_us\": " << h->PercentileUs(90) << ", \"p99_us\": "
        << h->PercentileUs(99) << ",\n      \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t count = h->BucketCount(i);
      if (count == 0) continue;  // sparse output: empty buckets are implied
      out << (bfirst ? "" : ", ") << "{\"le_us\": ";
      if (i < Histogram::kFiniteBuckets) {
        out << (1ULL << i);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << count << "}";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string Registry::ToText() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << " " << c->Get() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge " << name << " " << g->Get() << " max " << g->Max() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << " count " << h->Count() << " sum_us "
        << h->SumUs() << " p50_us " << h->PercentileUs(50) << " p99_us "
        << h->PercentileUs(99) << " max_us " << h->MaxUs() << "\n";
  }
  return out.str();
}

Status Registry::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("metrics: cannot open " + path);
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Status::Unavailable("metrics: short write to " + path);
  return Status::Ok();
}

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: outlive all users
  return *global;
}

}  // namespace nadreg::obs
