#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/sync.h"

namespace nadreg::obs {

namespace {

struct Sink {
  Mutex mu;
  std::FILE* file GUARDED_BY(mu) = nullptr;
  std::chrono::steady_clock::time_point epoch GUARDED_BY(mu);
  bool wrote_event GUARDED_BY(mu) = false;
};

Sink& GlobalSink() {
  static Sink* sink = new Sink();
  return *sink;
}

// Fast active check without taking the sink mutex on the hot path.
std::atomic<bool> g_active{false};

std::uint64_t CurrentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000000;
}

// Span titles are library-chosen plus caller labels; escape the two
// characters that could break the JSON string.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

Status StartTrace(const std::string& path) {
  Sink& sink = GlobalSink();
  MutexLock lock(sink.mu);
  if (sink.file != nullptr) {
    std::fputs("{}]\n", sink.file);
    std::fclose(sink.file);
    sink.file = nullptr;
    g_active.store(false, std::memory_order_release);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Unavailable("trace: cannot open " + path);
  std::fputs("[\n", f);
  sink.file = f;
  sink.epoch = std::chrono::steady_clock::now();
  sink.wrote_event = false;
  g_active.store(true, std::memory_order_release);
  return Status::Ok();
}

void StopTrace() {
  Sink& sink = GlobalSink();
  MutexLock lock(sink.mu);
  if (sink.file == nullptr) return;
  g_active.store(false, std::memory_order_release);
  // Close the array strictly (the last event line ends with a comma).
  std::fputs("{}]\n", sink.file);
  std::fclose(sink.file);
  sink.file = nullptr;
}

bool TraceActive() { return g_active.load(std::memory_order_acquire); }

void EmitSpan(std::string_view cat, std::string_view name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end) {
  if (!TraceActive()) return;
  Sink& sink = GlobalSink();
  MutexLock lock(sink.mu);
  if (sink.file == nullptr) return;  // raced with StopTrace
  const auto ts = std::chrono::duration_cast<std::chrono::microseconds>(
                      start - sink.epoch)
                      .count();
  const auto dur =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  std::fprintf(sink.file,
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
               "\"dur\":%lld,\"pid\":1,\"tid\":%llu},\n",
               Escape(name).c_str(), Escape(cat).c_str(),
               static_cast<long long>(ts < 0 ? 0 : ts),
               static_cast<long long>(dur < 0 ? 0 : dur),
               static_cast<unsigned long long>(CurrentTid()));
  sink.wrote_event = true;
}

ScopedPhase::ScopedPhase(Histogram* hist, std::string_view cat,
                         std::string_view name, std::string_view label)
    : hist_(hist),
      traced_(TraceActive()),
      cat_(cat),
      start_(std::chrono::steady_clock::now()) {
  if (traced_) {
    name_ = std::string(name);
    if (!label.empty()) {
      name_ += ':';
      name_ += label;
    }
  }
}

ScopedPhase::~ScopedPhase() {
  const auto end = std::chrono::steady_clock::now();
  if (hist_ != nullptr) {
    hist_->Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
            .count()));
  }
  if (traced_) EmitSpan(cat_, name_, start_, end);
}

std::chrono::microseconds ScopedPhase::Elapsed() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start_);
}

}  // namespace nadreg::obs
