/// \file
/// The unified stats surface of the observability layer: every register
/// emulation endpoint and the quorum engine expose their phase counters
/// through one accessor instead of per-class one-offs (this replaces the
/// old MwmrAtomic::snapshot_stats()-style paths).
#pragma once

#include <cstdint>

namespace nadreg::obs {

/// Per-endpoint operation/phase counters. Layers fill the fields they own
/// and leave the rest at zero; counters compose by addition, so an
/// emulation reports its own phases plus its quorum engine's.
struct PhaseCounters {
  // Emulated OPERATIONs completed through this endpoint.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t deadline_timeouts = 0;

  // Quorum engine (core::RegisterSet).
  std::uint64_t quorum_waits = 0;     // blocking Await calls
  std::uint64_t quorum_wait_us = 0;   // total time blocked in Await
  std::uint64_t pending_queued = 0;   // base ops queued behind a pending op
  std::uint64_t max_pending_depth = 0;  // deepest per-register queue seen

  // Name-snapshot layer (Fig. 3 emulations only).
  std::uint64_t collects = 0;
  std::uint64_t adoptions = 0;
  std::uint64_t sticky_reads = 0;
  std::uint64_t sticky_sets = 0;

  PhaseCounters& operator+=(const PhaseCounters& o) {
    reads += o.reads;
    writes += o.writes;
    deadline_timeouts += o.deadline_timeouts;
    quorum_waits += o.quorum_waits;
    quorum_wait_us += o.quorum_wait_us;
    pending_queued += o.pending_queued;
    if (o.max_pending_depth > max_pending_depth) {
      max_pending_depth = o.max_pending_depth;
    }
    collects += o.collects;
    adoptions += o.adoptions;
    sticky_reads += o.sticky_reads;
    sticky_sets += o.sticky_sets;
    return *this;
  }
};

/// Implemented by everything that can account for its own work.
class Instrumented {
 public:
  virtual ~Instrumented() = default;

  /// A consistent snapshot of this endpoint's counters (values only ever
  /// grow; concurrent operations may be mid-flight).
  virtual PhaseCounters op_metrics() const = 0;
};

}  // namespace nadreg::obs
