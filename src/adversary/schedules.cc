#include "adversary/schedules.h"

#include <chrono>
#include <future>
#include <sstream>

#include "common/codec.h"
#include "core/config.h"
#include "core/mwsr_seqcst.h"
#include "core/register_set.h"
#include "core/swsr_atomic.h"
#include "sim/det_farm.h"

namespace nadreg::adversary {
namespace {

using namespace std::chrono_literals;
using checker::HistoryRecorder;
using core::FarmConfig;
using sim::DetFarm;

using Pred = std::function<bool(const DetFarm::PendingOp&)>;

void SpinUntilPending(DetFarm& farm, const Pred& pred, std::size_t n) {
  // Event-driven: DetFarm wakes us on every Issue (no yield-polling).
  (void)farm.WaitPendingAtLeast(pred, n);
}

/// Runs a blocking emulated operation while the adversary serves exactly
/// the base operations matching `deliver`. Returns the operation's result.
template <typename Fn>
auto DriveOp(DetFarm& farm, const Pred& deliver, Fn&& op) {
  auto fut = std::async(std::launch::async, std::forward<Fn>(op));
  while (fut.wait_for(1ms) != std::future_status::ready) {
    farm.DeliverWhere(deliver);
  }
  return fut.get();
}

/// The "repaired" Theorem 1 candidate: a wait-free max-seq reader that
/// writes its chosen value back to a majority before returning — the
/// standard regular-to-atomic trick. The schedule shows the paper's model
/// breaks it anyway: the write-back itself becomes a pending write that a
/// flush can resurrect over newer state.
class WriteBackReader {
 public:
  WriteBackReader(BaseRegisterClient& client, const FarmConfig& farm,
                  std::vector<RegisterId> regs, ProcessId self)
      : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {}

  std::string Read() {
    auto t = set_.ReadAll();
    set_.Await(t, quorum_);
    TaggedValue best;
    for (const auto& [idx, bytes] : t.Results()) {
      auto tv = DecodeTaggedValue(bytes);
      if (tv && tv->seq > best.seq) best = std::move(*tv);
    }
    if (best.seq > 0) {
      auto wb = set_.WriteAll(EncodeTaggedValue(best));
      set_.Await(wb, quorum_);
    }
    return best.payload;
  }

 private:
  core::RegisterSet set_;
  std::size_t quorum_;
};

}  // namespace

ScheduleOutcome RunTheorem1WaitFreeSwmr() {
  ScheduleOutcome out;
  out.name = "theorem1-waitfree-swmr";
  std::ostringstream story;

  FarmConfig cfg{1};
  DetFarm farm;
  auto regs = cfg.Spread(0);
  core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
  core::SwsrAtomicReader reader_a(farm, cfg, regs, 2);
  core::SwsrAtomicReader reader_b(farm, cfg, regs, 3);
  HistoryRecorder rec;

  story << "Candidate: uniform wait-free max-seq SWMR emulation over 3 base "
           "registers (quorum 2), one register may crash.\n";

  // 1. The WRITE of v1 reaches only register r0 — the writer is slow or
  //    crashed; wait-free readers may not wait to find out which.
  auto hw = rec.BeginWrite(1, "v1");
  auto wfut = std::async(std::launch::async, [&] { writer.Write("v1"); });
  SpinUntilPending(
      farm, [](const DetFarm::PendingOp& op) { return op.is_write; }, 3);
  farm.DeliverWhere(
      [](const DetFarm::PendingOp& op) { return op.is_write && op.r.disk == 0; });
  story << "1. WRITE(v1) is torn: it reaches r0 only; the writes to r1, r2 "
           "stay pending (Fig. 1).\n";

  // 2. Reader A is served quorum {r0, r1}: it sees v1 and — being
  //    wait-free — must return it.
  auto ha = rec.BeginRead(2);
  std::string va = DriveOp(farm,
                           [](const DetFarm::PendingOp& op) {
                             return op.p == 2 && op.r.disk != 2;
                           },
                           [&] { return reader_a.Read(); });
  rec.EndRead(ha, va);
  story << "2. Reader A is served {r0, r1}, sees (1, v1), returns \"" << va
        << "\".\n";

  // 3. Reader B is served the stale majority {r1, r2}: both hold the
  //    initial value, so B returns it — after A already returned v1.
  auto hb = rec.BeginRead(3);
  std::string vb = DriveOp(farm,
                           [](const DetFarm::PendingOp& op) {
                             return op.p == 3 && op.r.disk != 0;
                           },
                           [&] { return reader_b.Read(); });
  rec.EndRead(hb, vb);
  story << "3. Reader B is served {r1, r2}, sees only the initial value, "
           "returns \""
        << (vb.empty() ? "<initial>" : vb) << "\".\n";

  // Cleanup: let the torn WRITE finish (it was merely slow).
  farm.DeliverAll();
  wfut.get();
  rec.EndWrite(hw);
  story << "4. The pending writes are flushed; the WRITE completes — too "
           "late: v1 was READ and then un-READ, which no linearization "
           "permits.\n";

  out.history = rec.CheckableHistory();
  out.atomic = checker::CheckAtomic(out.history);
  out.seqcst = checker::CheckSequentiallyConsistent(out.history);
  out.narrative = story.str();
  return out;
}

ScheduleOutcome RunTheorem1WriteBackResurrection() {
  ScheduleOutcome out;
  out.name = "theorem1-writeback-resurrection";
  std::ostringstream story;

  FarmConfig cfg{1};
  DetFarm farm;
  auto regs = cfg.Spread(0);
  core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
  WriteBackReader reader_a(farm, cfg, regs, 2);
  WriteBackReader reader_b(farm, cfg, regs, 3);
  WriteBackReader reader_c(farm, cfg, regs, 4);
  WriteBackReader reader_d(farm, cfg, regs, 5);
  HistoryRecorder rec;

  story << "Candidate: the Theorem 1 candidate \"repaired\" with reader "
           "write-back. The model's pending writes break it too.\n";

  auto Write = [&](const std::string& v) {
    auto h = rec.BeginWrite(1, v);
    DriveOp(farm, [](const DetFarm::PendingOp& op) { return op.p == 1; },
            [&] {
              writer.Write(v);
              return 0;
            });
    rec.EndWrite(h);
  };
  auto Read = [&](auto& reader, ProcessId pid, const Pred& deliver) {
    auto h = rec.BeginRead(pid);
    std::string v = DriveOp(farm, deliver, [&] { return reader.Read(); });
    rec.EndRead(h, v);
    return v;
  };

  // 1. WRITE(v1) completes everywhere.
  Write("v1");
  story << "1. WRITE(v1) completes on all of r0, r1, r2.\n";

  // 2. Reader A reads v1; its write-back lands on {r0, r1} and is left
  //    PENDING on r2 (the reader completed — footnote 3 forked it).
  Read(reader_a, 2, [](const DetFarm::PendingOp& op) {
    return op.p == 2 && op.r.disk != 2;
  });
  story << "2. Reader A returns v1; its write-back to r2 is left pending.\n";

  // 3. Reader B reads v1; its write-back is left pending on r1.
  Read(reader_b, 3, [](const DetFarm::PendingOp& op) {
    return op.p == 3 && !(op.is_write && op.r.disk == 1);
  });
  story << "3. Reader B returns v1; its write-back to r1 is left pending.\n";

  // 4. WRITE(v2) completes everywhere; every register holds (2, v2).
  Write("v2");
  story << "4. WRITE(v2) completes on all of r0, r1, r2.\n";

  // 5. Reader C confirms: it reads v2.
  std::string vc = Read(reader_c, 4, [](const DetFarm::PendingOp& op) {
    return op.p == 4 && op.r.disk != 2;
  });
  story << "5. Reader C returns \"" << vc << "\".\n";

  // 6. The adversary flushes the old reader write-backs: r1 and r2 revert
  //    to (1, v1). The completed WRITE(v2) survives only on r0.
  while (farm.DeliverWhere([](const DetFarm::PendingOp& op) {
           return op.p == 2 || op.p == 3;
         }) > 0) {
  }
  story << "6. The pending reader write-backs are flushed: r1 and r2 now "
           "hold (1, v1) again — resurrection by pending write.\n";

  // 7. Fresh reader D (uniform: it has no memory of v2) is served {r1, r2}
  //    and returns v1 — after C returned v2.
  std::string vd = Read(reader_d, 5, [](const DetFarm::PendingOp& op) {
    return op.p == 5 && op.r.disk != 0;
  });
  story << "7. Fresh reader D is served {r1, r2} and returns \"" << vd
        << "\" — a stale read after C's v2.\n";

  farm.DeliverAll();
  out.history = rec.CheckableHistory();
  out.atomic = checker::CheckAtomic(out.history);
  out.seqcst = checker::CheckSequentiallyConsistent(out.history);
  out.narrative = story.str();
  return out;
}

ScheduleOutcome RunTheorem2HiddenWrite() {
  ScheduleOutcome out;
  out.name = "theorem2-hidden-write";
  std::ostringstream story;

  FarmConfig cfg{1};
  DetFarm farm;
  auto regs = cfg.Spread(0);
  core::MwsrWriter writer_x(farm, cfg, regs, 10);
  core::MwsrWriter writer_y(farm, cfg, regs, 11);
  core::MwsrWriter writer_z(farm, cfg, regs, 12);
  core::MwsrWriter writer_s(farm, cfg, regs, 13);
  core::MwsrReader reader(farm, cfg, regs, 99);
  HistoryRecorder rec;

  story << "Candidate: the Fig. 2 MWSR algorithm used as an *atomic* MWSR "
           "register (Theorem 2 says no finite uniform candidate can "
           "succeed; this is the natural one). Processes are reliable; no "
           "register actually crashes — its mere possibility forces "
           "wait-for-quorum behaviour that leaves pending writes.\n";

  auto Write = [&](core::MwsrWriter& w, ProcessId pid, const std::string& v,
                   const Pred& deliver) {
    auto h = rec.BeginWrite(pid, v);
    DriveOp(farm, deliver, [&] {
      w.Write(v);
      return 0;
    });
    rec.EndWrite(h);
  };
  auto Read = [&](const Pred& deliver) {
    auto h = rec.BeginRead(99);
    std::string v = DriveOp(farm, deliver, [&] { return reader.Read(); });
    rec.EndRead(h, v);
    return v;
  };

  // Phase 1 (Lemma 2.1/2.5 machinery, specialised): three WRITEs complete,
  // each leaving its write to a different base register pending, until all
  // of r0, r1, r2 carry a pending write — a deceiving configuration.
  Write(writer_x, 10, "vx", [](const DetFarm::PendingOp& op) {
    return op.p == 10 && op.r.disk != 0;
  });
  story << "1. WRITE(vx) completes via {r1, r2}; its write to r0 is left "
           "pending.\n";
  Write(writer_y, 11, "vy", [](const DetFarm::PendingOp& op) {
    return op.p == 11 && op.r.disk != 1;
  });
  story << "2. WRITE(vy) completes via {r0, r2}; its write to r1 is left "
           "pending.\n";
  Write(writer_z, 12, "vz", [](const DetFarm::PendingOp& op) {
    return op.p == 12 && op.r.disk != 2;
  });
  story << "3. WRITE(vz) completes via {r0, r1}; its write to r2 is left "
           "pending. Every base register is now covered by a pending "
           "write; the configuration is deceiving (no WRITE is running, "
           "and dropping any subset of pending writes is indistinguishable "
           "to every process).\n";

  std::string r1 = Read([](const DetFarm::PendingOp& op) {
    return op.p == 99 && !op.is_write && op.r.disk != 2;
  });
  story << "4. READ #1 served {r0, r1} returns \"" << r1 << "\".\n";

  // Phase 2: the solo WRITE. It completes on EVERY base register — there
  // is nothing more an implementation could do.
  Write(writer_s, 13, "vs",
        [](const DetFarm::PendingOp& op) { return op.p == 13; });
  story << "5. Solo WRITE(vs) completes on ALL of r0, r1, r2 and leaves "
           "nothing pending.\n";

  std::string r2 = Read([](const DetFarm::PendingOp& op) {
    return op.p == 99 && !op.is_write && op.r.disk != 2;
  });
  story << "6. READ #2 served {r0, r1} returns \"" << r2 << "\".\n";

  // Phase 3: the endgame — flush the three old pending writes. Every
  // trace of the completed WRITE(vs) is erased from the system.
  farm.DeliverWhere([](const DetFarm::PendingOp& op) {
    return op.is_write && (op.p == 10 || op.p == 11 || op.p == 12);
  });
  story << "7. The adversary flushes the pending writes of vx, vy, vz onto "
           "r0, r1, r2: the completed solo WRITE(vs) is now completely "
           "hidden.\n";

  std::string r3 = Read([](const DetFarm::PendingOp& op) {
    return op.p == 99 && !op.is_write && op.r.disk != 2;
  });
  story << "8. READ #3 served {r0, r1} returns \"" << r3
        << "\" — an older value, AFTER the same reader already returned "
           "vs. The single-reader history is not atomic.\n";

  farm.DeliverAll();
  out.history = rec.CheckableHistory();
  out.atomic = checker::CheckAtomic(out.history);
  out.seqcst = checker::CheckSequentiallyConsistent(out.history);
  out.narrative = story.str();
  return out;
}

ScheduleOutcome RunTheorem3SeqCstLiveness(int stale_reads) {
  ScheduleOutcome out;
  out.name = "theorem3-seqcst-liveness";
  std::ostringstream story;

  FarmConfig cfg{1};
  DetFarm farm;
  auto regs = cfg.Spread(0);
  core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
  core::SwsrAtomicReader reader_a(farm, cfg, regs, 2);
  core::SwsrAtomicReader reader_b(farm, cfg, regs, 3);
  HistoryRecorder rec;

  story << "Candidate: wait-free max-seq readers as a sequentially "
           "consistent SWMR register. Sequential consistency must hold for "
           "infinite executions (Section 5.1), which implies: with "
           "finitely many WRITEs, eventually all READs return the last "
           "serialized WRITE.\n";

  // 1. Torn WRITE: v1 reaches r0 only; the writer crashes (allowed — this
  //    is the wait-free, crash-prone setting).
  auto hw = rec.BeginWrite(1, "v1");
  auto wfut = std::async(std::launch::async, [&] { writer.Write("v1"); });
  SpinUntilPending(
      farm, [](const DetFarm::PendingOp& op) { return op.is_write; }, 3);
  farm.DeliverWhere(
      [](const DetFarm::PendingOp& op) { return op.is_write && op.r.disk == 0; });
  story << "1. WRITE(v1) reaches r0 only; the writer crashes.\n";

  // 2. Reader A observes v1 once.
  auto ha = rec.BeginRead(2);
  std::string va = DriveOp(farm,
                           [](const DetFarm::PendingOp& op) {
                             return op.p == 2 && op.r.disk != 2;
                           },
                           [&] { return reader_a.Read(); });
  rec.EndRead(ha, va);
  story << "2. Reader A is served {r0, r1} and returns \"" << va
        << "\": v1 took effect.\n";

  // 3. Reader B READs forever; the adversary serves it the stale majority
  //    {r1, r2} every single time (legal: only r0 appears slow, and one
  //    register may be slow/crashed forever).
  int stale = 0;
  for (int i = 0; i < stale_reads; ++i) {
    auto hb = rec.BeginRead(3);
    std::string vb = DriveOp(farm,
                             [](const DetFarm::PendingOp& op) {
                               return op.p == 3 && op.r.disk != 0;
                             },
                             [&] { return reader_b.Read(); });
    rec.EndRead(hb, vb);
    if (vb.empty()) ++stale;
  }
  story << "3. Reader B executes " << stale_reads
        << " READs served from {r1, r2}; " << stale
        << " of them return the initial value.\n";

  // The finite prefix is sequentially consistent — that is exactly the
  // trap: the violation lives in the infinite execution.
  farm.DeliverAll();
  wfut.get();
  rec.EndWrite(hw);

  out.history = rec.CheckableHistory();
  out.atomic = checker::CheckAtomic(out.history);
  out.seqcst = checker::CheckSequentiallyConsistent(out.history);
  out.liveness_violated = (va == "v1") && stale == stale_reads;
  std::ostringstream live;
  live << "In any serialization of the infinite continuation, WRITE(v1) "
          "occupies some finite position k (it must precede reader A's "
          "READ -> v1). All but finitely many of reader B's READs follow "
          "position k and must return v1 — but the adversary keeps serving "
          "B the stale majority forever ("
       << stale << "/" << stale_reads
       << " stale so far, unbounded in the limit). The liveness clause of "
          "sequential consistency fails; no finite checker can see it, "
          "which is why the finite-prefix verdict above is 'consistent'.";
  out.liveness_explanation = live.str();
  story << "4. " << out.liveness_explanation << "\n";
  out.narrative = story.str();
  return out;
}

}  // namespace nadreg::adversary
