/// \file
/// Executable impossibility-proof schedules (Theorems 1–3).
///
/// An impossibility theorem cannot be "run", but its proof is a schedule
/// construction: an adversary that steers delivery order, covers registers,
/// leaves writes pending after completed WRITEs, and flushes them later.
/// This module executes those schedules against the *natural uniform
/// candidate algorithms* (the ones the paper's positive results are built
/// from, used beyond their guaranteed table cell) and produces concrete
/// histories whose violations are certified by the exact checkers.
///
/// Each schedule returns the recorded history, the atomicity and
/// sequential-consistency verdicts, and a step-by-step narrative that maps
/// the run onto the proof it instantiates.
///
///   Theorem 1 (Table 1, SWMR = No; wait-free atomic, processes may crash):
///     a torn WRITE sits on a minority; wait-free reader A must return the
///     new value, reader B steered to stale disks then returns the old one
///     — the history is not linearizable. A write-back variant of the
///     candidate is also broken, by flushing an old reader write-back over
///     newer state (pending-write resurrection).
///
///   Theorem 2 (Table 2, MWSR = No; atomic, reliable processes):
///     the proof's endgame. Three WRITERs complete, each leaving one
///     pending base write, until every base register is covered by a
///     pending write (the "deceiving configuration"); a solo WRITE then
///     completes on every register; flushing the pending writes erases all
///     its traces, and the single reader — having already returned the solo
///     value — returns an older one. Not atomic; still sequentially
///     consistent (consistent with Fig. 2's actual guarantee).
///
///   Theorem 3 (Table 3, SWMR = No; wait-free sequentially consistent):
///     the Section 5.1 infinite-execution liveness requirement. A torn
///     WRITE is observed once by reader A; reader B's quorum is forever
///     steered to the stale majority. Every finite prefix is sequentially
///     consistent (the checker agrees), but in any serialization of the
///     infinite run the WRITE occupies a finite position and all but
///     finitely many of B's READs must follow it — yet B returns the old
///     value unboundedly often. The schedule reports the growing stale-read
///     count as the liveness-violation witness.
#pragma once

#include <string>
#include <vector>

#include "checker/consistency.h"
#include "checker/history.h"

namespace nadreg::adversary {

struct ScheduleOutcome {
  std::string name;
  std::string narrative;  // step-by-step mapping onto the proof
  std::vector<checker::Operation> history;
  checker::CheckResult atomic;
  checker::CheckResult seqcst;
  // Theorem 3 only: the infinite-execution liveness verdict.
  bool liveness_violated = false;
  std::string liveness_explanation;
};

/// Theorem 1 — torn write + steered reader quorums against the natural
/// wait-free max-sequence-number SWMR candidate.
ScheduleOutcome RunTheorem1WaitFreeSwmr();

/// Theorem 1 ablation — the "fixed" candidate whose readers write back
/// before returning also falls: an old write-back left pending is flushed
/// over newer state and resurrects a stale value for a fresh reader.
ScheduleOutcome RunTheorem1WriteBackResurrection();

/// Theorem 2 — the hidden-WRITE endgame against the Fig. 2 algorithm used
/// as an atomic MWSR candidate (reliable processes; register failure only
/// threatened, never used — the schedule is crash-free, as the theorem
/// permits).
ScheduleOutcome RunTheorem2HiddenWrite();

/// Theorem 3 — seq-cst liveness violation; `stale_reads` is how many
/// post-observation READs of reader B to drive (the witness grows with it).
ScheduleOutcome RunTheorem3SeqCstLiveness(int stale_reads);

}  // namespace nadreg::adversary
