/// \file
/// The Theorem 2 construction as a GENERIC attack: parameterized over any
/// candidate MWSR register implementation, not scripted against a specific
/// one (contrast adversary/schedules.h, which replays hand-built schedules).
///
/// The attack implements the proof's run skeleton:
///
///   1. Cover every disk with a pending write: for each disk d, a fresh
///      WRITER executes a WRITE while disk d is unresponsive (merely slow,
///      as far as anyone can tell). A correct candidate — which must
///      tolerate one crashed register — completes anyway, leaving its
///      operations on d pending (the paper's possibly-no-pending /
///      deceiving configurations). A candidate that instead blocks is
///      reported as such: it is not a 1-crash-tolerant implementation,
///      which is the other horn of the theorem's dichotomy.
///   2. Solo WRITE(v*): completes with every disk responsive — nothing of
///      it is pending; the single READER observes v*.
///   3. Flush: the adversary delivers the covered pending writes, erasing
///      v* from every base register.
///   4. The READER reads again; the exact checker decides atomicity of the
///      whole (crash-free, fully completed) history.
///
/// Against every quorum-style candidate we know how to write — including
/// the classic uniform timestamp construction (read the maximum timestamp,
/// write max+1), which is correct over RELIABLE base registers — the
/// attack produces a certified non-atomic history, which is exactly what
/// Theorem 2 predicts must happen to every finite uniform candidate.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "sim/det_farm.h"

namespace nadreg::adversary {

/// A candidate uniform MWSR register implementation under attack.
/// Write may be called with arbitrarily many distinct writer ids
/// (uniformity); Read is called from the single designated reader.
class MwsrCandidate {
 public:
  virtual ~MwsrCandidate() = default;
  virtual void Write(ProcessId writer, const std::string& value) = 0;
  virtual std::string Read() = 0;
};

using CandidateFactory = std::function<std::unique_ptr<MwsrCandidate>(
    sim::DetFarm&, const core::FarmConfig&)>;

struct AttackResult {
  enum class Kind {
    kViolationFound,    // checker-certified non-atomic history
    kCandidateBlocked,  // an operation hung with one silent disk
    kSurvived           // no violation produced (unexpected per Theorem 2)
  };
  Kind kind = Kind::kSurvived;
  std::string detail;  // narrative / which step blocked
  std::vector<checker::Operation> history;
  checker::CheckResult atomic;
  checker::CheckResult seqcst;
};

/// Runs the generic hidden-write attack against the candidate.
AttackResult HiddenWriteAttack(const CandidateFactory& factory,
                               const core::FarmConfig& cfg);

// --- Stock candidates to attack (and for tests) -----------------------------

/// The Fig. 2 algorithm read as an atomic register.
CandidateFactory Fig2Candidate();

/// The classic uniform timestamp construction (Vitányi–Awerbuch style):
/// WRITE reads a majority for the max (timestamp, writer) pair, then
/// writes (max+1, writer, v) to all, waiting for a majority; READ returns
/// the max-timestamp value of a majority, with a monotone memo. Correct
/// over reliable base registers — and broken by pending-write flushing.
CandidateFactory TimestampCandidate();

/// A deliberately non-fault-tolerant candidate (waits for ALL 2t+1 acks):
/// exercises the attack's "blocked" detection. Not a real implementation.
CandidateFactory FragileCandidate();

// --- Lemma 2.1, executed literally -------------------------------------------

/// Result of one Lemma 2.1 extension step: "if S is deceiving then we can
/// extend S to another configuration S' that is deceiving and contains
/// one more pending operation than S."
struct Lemma21Result {
  bool ok = false;
  RegisterId covered;           // the register both writers targeted first
  std::size_t pending_before = 0;
  std::size_t pending_after = 0;
  std::string narrative;
};

/// Executes the lemma's race with covering GATES (not delivery steering):
/// two fresh writers p and q are started; the adversary freezes p at its
/// gate the moment it is about to issue its first base write (learning
/// which register r_p it covers), lets q run its WRITE to completion while
/// leaving q's write to that same register pending, then releases p to
/// complete normally. The result is one more pending write on the covered
/// register, with no WRITE running — a deceiving configuration again.
Lemma21Result RunLemma21Race(const CandidateFactory& factory,
                             const core::FarmConfig& cfg);

}  // namespace nadreg::adversary
