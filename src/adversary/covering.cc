#include "adversary/covering.h"

#include <chrono>
#include <future>
#include <sstream>

#include "common/codec.h"
#include "core/mwsr_seqcst.h"
#include "core/register_set.h"

namespace nadreg::adversary {
namespace {

using namespace std::chrono_literals;
using core::FarmConfig;
using sim::DetFarm;

constexpr auto kBlockDetect = 1500ms;

/// Drives a blocking candidate operation while delivering exactly the
/// base operations matching `deliver`. Returns false if the operation
/// fails to complete within the block-detection budget.
template <typename Fn>
bool DriveOrBlock(DetFarm& farm, const std::function<bool(
                                     const DetFarm::PendingOp&)>& deliver,
                  Fn&& op) {
  auto fut = std::async(std::launch::async, std::forward<Fn>(op));
  const auto deadline = std::chrono::steady_clock::now() + kBlockDetect;
  while (fut.wait_for(1ms) != std::future_status::ready) {
    farm.DeliverWhere(deliver);
    if (std::chrono::steady_clock::now() > deadline) {
      // Blocked. Un-silence everything so the thread can be joined.
      while (fut.wait_for(1ms) != std::future_status::ready) {
        farm.DeliverAll();
      }
      fut.get();
      return false;
    }
  }
  fut.get();
  return true;
}

}  // namespace

AttackResult HiddenWriteAttack(const CandidateFactory& factory,
                               const FarmConfig& cfg) {
  AttackResult result;
  std::ostringstream story;
  DetFarm farm;
  auto candidate = factory(farm, cfg);
  checker::HistoryRecorder rec;

  // Phase 1: cover every disk with pending operations. Writer k runs with
  // disk k silent; everything else is delivered promptly.
  for (DiskId d = 0; d < cfg.num_disks(); ++d) {
    const ProcessId writer = 10 + d;
    const std::string value = "v" + std::to_string(d);
    auto h = rec.BeginWrite(writer, value);
    const bool completed = DriveOrBlock(
        farm,
        [d, writer](const DetFarm::PendingOp& op) {
          return op.p == writer && op.r.disk != d;
        },
        [&] { candidate->Write(writer, value); });
    if (!completed) {
      result.kind = AttackResult::Kind::kCandidateBlocked;
      result.detail =
          "WRITE(" + value + ") blocked while disk " + std::to_string(d) +
          " was merely slow: the candidate is not 1-crash fault-tolerant "
          "(the other horn of Theorem 2's dichotomy).";
      return result;
    }
    rec.EndWrite(h);
    story << "covered disk " << d << " with pending ops of WRITE(" << value
          << ")\n";
  }

  // Sanity read (also warms any reader-side state the candidate keeps).
  {
    auto h = rec.BeginRead(99);
    std::string v;
    DriveOrBlock(farm,
                 [](const DetFarm::PendingOp& op) { return op.p == 99; },
                 [&] { v = candidate->Read(); });
    rec.EndRead(h, v);
    story << "READ #1 -> \"" << v << "\"\n";
  }

  // Phase 2: the solo WRITE completes on EVERY disk.
  const std::string solo = "v-solo";
  {
    auto h = rec.BeginWrite(50, solo);
    const bool completed = DriveOrBlock(
        farm, [](const DetFarm::PendingOp& op) { return op.p == 50; },
        [&] { candidate->Write(50, solo); });
    if (!completed) {
      result.kind = AttackResult::Kind::kCandidateBlocked;
      result.detail = "solo WRITE blocked with all disks responsive";
      return result;
    }
    rec.EndWrite(h);
    story << "solo WRITE(" << solo << ") completed on every disk\n";
  }
  {
    auto h = rec.BeginRead(99);
    std::string v;
    DriveOrBlock(farm,
                 [](const DetFarm::PendingOp& op) { return op.p == 99; },
                 [&] { v = candidate->Read(); });
    rec.EndRead(h, v);
    story << "READ #2 -> \"" << v << "\"\n";
  }

  // Phase 3: flush the covered pending writes — they may take effect at
  // any time (Fig. 1), and now is the most damaging time. Loop: delivering
  // a pending read releases the write chained behind it (footnote 3).
  std::size_t flushed = 0;
  for (std::size_t n = 1; n != 0;) {
    n = farm.DeliverWhere(
        [](const DetFarm::PendingOp& op) { return op.p >= 10 && op.p < 50; });
    flushed += n;
  }
  story << "flushed " << flushed
        << " pending operation(s) left behind by the covering WRITEs\n";

  // Phase 4: read again.
  {
    auto h = rec.BeginRead(99);
    std::string v;
    DriveOrBlock(farm,
                 [](const DetFarm::PendingOp& op) { return op.p == 99; },
                 [&] { v = candidate->Read(); });
    rec.EndRead(h, v);
    story << "READ #3 -> \"" << v << "\"\n";
  }

  // Phase 5: a late WRITE whose first-round quorum the adversary steers
  // away from the disk holding the largest flushed record — this defeats
  // reader-memo candidates: the late WRITE picks a timestamp that loses
  // to the memoized solo WRITE, so a subsequent READ returns the (older)
  // solo value after the late WRITE completed.
  {
    const DiskId avoided = cfg.num_disks() - 1;
    auto h = rec.BeginWrite(60, "v-late");
    const bool completed = DriveOrBlock(
        farm,
        [avoided](const DetFarm::PendingOp& op) {
          return op.p == 60 && op.r.disk != avoided;
        },
        [&] { candidate->Write(60, "v-late"); });
    if (!completed) {
      result.kind = AttackResult::Kind::kCandidateBlocked;
      result.detail = "late WRITE blocked while disk " +
                      std::to_string(avoided) + " was merely slow";
      return result;
    }
    rec.EndWrite(h);
    story << "late WRITE(v-late) completed via the stale quorum\n";
  }
  {
    auto h = rec.BeginRead(99);
    std::string v;
    DriveOrBlock(farm,
                 [](const DetFarm::PendingOp& op) { return op.p == 99; },
                 [&] { v = candidate->Read(); });
    rec.EndRead(h, v);
    story << "READ #4 -> \"" << v << "\"\n";
  }

  farm.DeliverAll();
  result.history = rec.CheckableHistory();
  result.atomic = checker::CheckAtomic(result.history);
  result.seqcst = checker::CheckSequentiallyConsistent(result.history);
  result.kind = result.atomic.ok ? AttackResult::Kind::kSurvived
                                 : AttackResult::Kind::kViolationFound;
  result.detail = story.str();
  return result;
}

// --- Stock candidates --------------------------------------------------------

namespace {

class Fig2Impl : public MwsrCandidate {
 public:
  Fig2Impl(DetFarm& farm, const FarmConfig& cfg)
      : farm_(farm), cfg_(cfg), reader_(farm, cfg, cfg.Spread(0), 99) {}

  void Write(ProcessId writer, const std::string& value) override {
    auto [it, inserted] = writers_.try_emplace(writer, nullptr);
    if (inserted) {
      it->second = std::make_unique<core::MwsrWriter>(farm_, cfg_,
                                                      cfg_.Spread(0), writer);
    }
    it->second->Write(value);
  }
  std::string Read() override { return reader_.Read(); }

 private:
  DetFarm& farm_;
  FarmConfig cfg_;
  std::map<ProcessId, std::unique_ptr<core::MwsrWriter>> writers_;
  core::MwsrReader reader_;
};

/// (timestamp, writer) lexicographic order; payload carried alongside.
struct Stamp {
  std::uint64_t ts = 0;
  ProcessId writer = 0;
  friend auto operator<=>(const Stamp&, const Stamp&) = default;
};

class TimestampImpl : public MwsrCandidate {
 public:
  TimestampImpl(DetFarm& farm, const FarmConfig& cfg)
      : farm_(farm),
        cfg_(cfg),
        reader_set_(farm, 99, cfg.Spread(0)) {}

  void Write(ProcessId writer, const std::string& value) override {
    auto [it, inserted] = sets_.try_emplace(writer, nullptr);
    if (inserted) {
      it->second =
          std::make_unique<core::RegisterSet>(farm_, writer, cfg_.Spread(0));
    }
    core::RegisterSet& set = *it->second;
    // Round 1: learn the maximum timestamp from a majority.
    Stamp max_seen;
    {
      auto t = set.ReadAll();
      set.Await(t, cfg_.quorum());
      for (const auto& [idx, bytes] : t.Results()) {
        auto tv = DecodeTaggedValue(bytes);
        if (tv && Stamp{tv->seq, tv->writer} > max_seen) {
          max_seen = Stamp{tv->seq, tv->writer};
        }
      }
    }
    // Round 2: write (max+1, writer, v) to all, wait for a majority.
    TaggedValue record{writer, max_seen.ts + 1, value};
    auto t = set.WriteAll(EncodeTaggedValue(record));
    set.Await(t, cfg_.quorum());
  }

  std::string Read() override {
    auto t = reader_set_.ReadAll();
    reader_set_.Await(t, cfg_.quorum());
    for (const auto& [idx, bytes] : t.Results()) {
      auto tv = DecodeTaggedValue(bytes);
      if (tv && Stamp{tv->seq, tv->writer} > best_stamp_) {
        best_stamp_ = Stamp{tv->seq, tv->writer};
        best_value_ = tv->payload;
      }
    }
    return best_value_;
  }

 private:
  DetFarm& farm_;
  FarmConfig cfg_;
  std::map<ProcessId, std::unique_ptr<core::RegisterSet>> sets_;
  core::RegisterSet reader_set_;
  Stamp best_stamp_;  // monotone memo, as in Sec. 3.2
  std::string best_value_;
};

/// Waits for every base register: blocks as soon as one disk is slow.
class FragileImpl : public MwsrCandidate {
 public:
  FragileImpl(DetFarm& farm, const FarmConfig& cfg)
      : farm_(farm), cfg_(cfg), reader_set_(farm, 99, cfg.Spread(0)) {}

  void Write(ProcessId writer, const std::string& value) override {
    core::RegisterSet set(farm_, writer, cfg_.Spread(0));
    auto t = set.WriteAll(EncodeTaggedValue(TaggedValue{writer, 1, value}));
    set.Await(t, cfg_.num_disks());  // all acks: not fault-tolerant
  }
  std::string Read() override {
    auto t = reader_set_.ReadAll();
    reader_set_.Await(t, cfg_.quorum());
    std::string v;
    for (const auto& [idx, bytes] : t.Results()) {
      auto tv = DecodeTaggedValue(bytes);
      if (tv && tv->seq > 0) v = tv->payload;
    }
    return v;
  }

 private:
  DetFarm& farm_;
  FarmConfig cfg_;
  core::RegisterSet reader_set_;
};

}  // namespace

namespace {

/// Runs the writer until it parks at its gate on a WRITE (serving any
/// pre-write read phase through first). Returns the covered op.
///
/// Discipline: while the gate is armed, the adversary must NOT deliver
/// the process's operations — a delivery handler can chain a queued
/// background write (footnote 3) and the issuing would then happen on the
/// adversary's own thread, which must not park (background-forked writes
/// are not "steps" of the process in the proof's sense, and parking here
/// would deadlock the adversary). So: catch the first op; if it is a
/// read, release UNGATED, let the whole read phase issue and quiesce,
/// then re-arm and serve the reads — the next write parks on the
/// process's own thread, with nothing queued that a delivery could chain.
DetFarm::PendingOp ParkOnFirstWrite(DetFarm& farm, ProcessId pid) {
  for (;;) {
    while (!farm.IsParked(pid)) std::this_thread::yield();
    DetFarm::PendingOp op = farm.WaitGated(pid);
    if (op.is_write) return op;
    farm.ReleaseGate(pid);  // gate disarmed: let the read phase flow

    // Wait until the process stops issuing (blocked on its read quorum).
    std::size_t prev = ~std::size_t{0};
    for (;;) {
      const std::size_t n =
          farm.PendingWhere([pid](const DetFarm::PendingOp& o) {
                return o.p == pid;
              }).size();
      if (n == prev && n > 0) break;
      prev = n;
      std::this_thread::sleep_for(200us);
    }

    // Re-arm, then serve the read responses; the process's next WRITE
    // parks on its own thread.
    farm.ArmGate(pid);
    while (!farm.IsParked(pid)) {
      farm.DeliverWhere([pid](const DetFarm::PendingOp& o) {
        return o.p == pid && !o.is_write;
      });
      std::this_thread::yield();
    }
  }
}

}  // namespace

Lemma21Result RunLemma21Race(const CandidateFactory& factory,
                             const core::FarmConfig& cfg) {
  Lemma21Result result;
  std::ostringstream story;
  DetFarm farm;
  auto candidate = factory(farm, cfg);
  constexpr ProcessId kP = 70;
  constexpr ProcessId kQ = 71;
  result.pending_before = farm.Pending().size();

  // Start p; freeze it the moment it is about to issue its first base
  // write — p now COVERS that register (Burns–Lynch covering, realized by
  // the gate: the write is not yet visible to anyone).
  farm.ArmGate(kP);
  auto p_thread = std::async(std::launch::async,
                             [&] { candidate->Write(kP, "vp"); });
  const DetFarm::PendingOp p_op = ParkOnFirstWrite(farm, kP);
  result.covered = p_op.r;
  story << "p froze about to write register (disk " << p_op.r.disk
        << ", block " << p_op.r.block << ") — covering it\n";

  // Start q; discover its first-write register the same way. For the
  // quorum-style candidates both writers hit the same register first (the
  // paper gets this from the pigeonhole over s+1 fresh writers).
  farm.ArmGate(kQ);
  auto q_thread = std::async(std::launch::async,
                             [&] { candidate->Write(kQ, "vq"); });
  const DetFarm::PendingOp q_op = ParkOnFirstWrite(farm, kQ);
  if (q_op.r != p_op.r) {
    farm.ReleaseGate(kQ);
    farm.ReleaseGate(kP);
    while (farm.DeliverAll() > 0 ||
           p_thread.wait_for(1ms) != std::future_status::ready ||
           q_thread.wait_for(1ms) != std::future_status::ready) {
    }
    result.ok = false;
    result.narrative = "first-write registers differ; the full proof would "
                       "recruit more writers (pigeonhole)";
    return result;
  }
  story << "q froze about to write the same register\n";

  // Let q run its WRITE to completion while its write to the covered
  // register is left pending (deliver everything of q except ops there).
  farm.ReleaseGate(kQ);
  {
    const RegisterId covered = p_op.r;
    const auto deadline = std::chrono::steady_clock::now() + kBlockDetect;
    while (q_thread.wait_for(1ms) != std::future_status::ready) {
      farm.DeliverWhere([covered](const DetFarm::PendingOp& op) {
        return op.p == kQ && op.r != covered;
      });
      if (std::chrono::steady_clock::now() > deadline) {
        result.ok = false;
        result.narrative = "q blocked: candidate not 1-crash tolerant";
        farm.ReleaseGate(kP);
        while (farm.DeliverAll() > 0 ||
               p_thread.wait_for(1ms) != std::future_status::ready ||
               q_thread.wait_for(1ms) != std::future_status::ready) {
        }
        return result;
      }
    }
    q_thread.get();
  }
  story << "q completed its WRITE with its write to the covered register "
           "left pending\n";

  // Release p: it writes to the covered register (over whatever is there)
  // and completes normally. q's pending write remains — one more pending
  // operation, no WRITE running: the configuration is deceiving again.
  farm.ReleaseGate(kP);
  {
    const auto deadline = std::chrono::steady_clock::now() + kBlockDetect;
    while (p_thread.wait_for(1ms) != std::future_status::ready) {
      farm.DeliverWhere(
          [](const DetFarm::PendingOp& op) { return op.p == kP; });
      if (std::chrono::steady_clock::now() > deadline) {
        result.ok = false;
        result.narrative = "p blocked after release";
        while (farm.DeliverAll() > 0 ||
               p_thread.wait_for(1ms) != std::future_status::ready) {
        }
        return result;
      }
    }
    p_thread.get();
  }
  story << "p completed its WRITE normally\n";

  result.pending_after =
      farm.PendingWhere([&](const DetFarm::PendingOp& op) {
            return op.p == kQ && op.r == result.covered;
          }).size();
  story << result.pending_after
        << " pending operation(s) of q remain on the covered register\n";
  result.ok = result.pending_after >= 1;
  result.narrative = story.str();
  return result;
}

CandidateFactory Fig2Candidate() {
  return [](DetFarm& farm, const FarmConfig& cfg) {
    return std::make_unique<Fig2Impl>(farm, cfg);
  };
}

CandidateFactory TimestampCandidate() {
  return [](DetFarm& farm, const FarmConfig& cfg) {
    return std::make_unique<TimestampImpl>(farm, cfg);
  };
}

CandidateFactory FragileCandidate() {
  return [](DetFarm& farm, const FarmConfig& cfg) {
    return std::make_unique<FragileImpl>(farm, cfg);
  };
}

}  // namespace nadreg::adversary
