#include "core/swmr_atomic.h"

#include <cassert>

namespace nadreg::core {

SwmrAtomicReader::SwmrAtomicReader(BaseRegisterClient& client,
                                   const FarmConfig& farm,
                                   std::vector<RegisterId> regs,
                                   ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWMR emulation needs 2t+1 base registers");
}

std::string SwmrAtomicReader::Read() {
  auto result = ReadImpl(std::nullopt);
  assert(result.has_value());
  return std::move(*result);
}

std::optional<std::string> SwmrAtomicReader::ReadWithDeadline(
    std::chrono::milliseconds d) {
  return ReadImpl(std::chrono::steady_clock::now() + d);
}

std::optional<std::string> SwmrAtomicReader::ReadImpl(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const auto remaining =
      [&]() -> std::optional<std::chrono::milliseconds> {
    if (!deadline) return std::nullopt;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline - std::chrono::steady_clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  };

  // Track the freshest seq seen per base register; phase 1's reads
  // already count toward phase 2's condition.
  std::vector<SeqNum> seen(set_.size(), 0);

  // Phase 1: choose-value. Read a majority, pick the largest seq.
  TaggedValue chosen;  // (v0, s0); seq 0 = initial value
  {
    auto ticket = set_.ReadAll();
    if (!set_.Await(ticket, quorum_, remaining())) return std::nullopt;
    for (const auto& [idx, bytes] : ticket.Results()) {
      auto tv = DecodeTaggedValue(bytes);
      if (!tv) continue;
      if (tv->seq > seen[idx]) seen[idx] = tv->seq;
      if (tv->seq > chosen.seq) chosen = std::move(*tv);
    }
  }

  // Phase 2: wait. Keep reading until a majority carry seq >= s0.
  for (;;) {
    std::size_t caught_up = 0;
    for (SeqNum s : seen) {
      if (s >= chosen.seq) ++caught_up;
    }
    if (caught_up >= quorum_) break;

    auto ticket = set_.ReadAll();
    if (!set_.Await(ticket, quorum_, remaining())) return std::nullopt;
    for (const auto& [idx, bytes] : ticket.Results()) {
      auto tv = DecodeTaggedValue(bytes);
      if (!tv) continue;
      if (tv->seq > seen[idx]) seen[idx] = tv->seq;
    }
  }
  return chosen.payload;
}

}  // namespace nadreg::core
