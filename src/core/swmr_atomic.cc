#include "core/swmr_atomic.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nadreg::core {

namespace {

obs::Histogram& ChooseHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("swmr.choose_value_us");
  return h;
}
obs::Histogram& WaitHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("swmr.wait_us");
  return h;
}
obs::Histogram& ReadHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("swmr.read_us");
  return h;
}

}  // namespace

SwmrAtomicReader::SwmrAtomicReader(BaseRegisterClient& client,
                                   const FarmConfig& farm,
                                   std::vector<RegisterId> regs,
                                   ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWMR emulation needs 2t+1 base registers");
}

std::string SwmrAtomicReader::Read() {
  auto result = ReadImpl(std::nullopt, {});
  assert(result.ok());
  return std::move(*result);
}

Expected<std::string> SwmrAtomicReader::Read(const OpOptions& opts) {
  return ReadImpl(opts.Start(), opts.label);
}

std::optional<std::string> SwmrAtomicReader::ReadWithDeadline(
    std::chrono::milliseconds d) {
  auto result = ReadImpl(std::chrono::steady_clock::now() + d, {});
  if (!result.ok()) return std::nullopt;
  return std::move(*result);
}

Expected<std::string> SwmrAtomicReader::ReadImpl(OpDeadline deadline,
                                                 const std::string& label) {
  obs::ScopedPhase op_phase(&ReadHist(), "swmr", "read", label);

  // Track the freshest seq seen per base register; phase 1's reads
  // already count toward phase 2's condition.
  std::vector<SeqNum> seen(set_.size(), 0);

  // Phase 1: choose-value. Read a majority, pick the largest seq.
  TaggedValue chosen;  // (v0, s0); seq 0 = initial value
  {
    obs::ScopedPhase phase(&ChooseHist(), "swmr", "choose_value", label);
    auto ticket = set_.ReadAll();
    if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
      ++timeouts_;
      return Status::Timeout("swmr read: choose-value quorum timed out");
    }
    for (const auto& [idx, bytes] : ticket.Results()) {
      auto tv = DecodeTaggedValue(bytes);
      if (!tv) continue;
      if (tv->seq > seen[idx]) seen[idx] = tv->seq;
      if (tv->seq > chosen.seq) chosen = std::move(*tv);
    }
  }

  // Phase 2: wait. Keep reading until a majority carry seq >= s0.
  {
    obs::ScopedPhase phase(&WaitHist(), "swmr", "wait", label);
    for (;;) {
      std::size_t caught_up = 0;
      for (SeqNum s : seen) {
        if (s >= chosen.seq) ++caught_up;
      }
      if (caught_up >= quorum_) break;

      auto ticket = set_.ReadAll();
      if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
        ++timeouts_;
        return Status::Timeout("swmr read: wait phase timed out");
      }
      for (const auto& [idx, bytes] : ticket.Results()) {
        auto tv = DecodeTaggedValue(bytes);
        if (!tv) continue;
        if (tv->seq > seen[idx]) seen[idx] = tv->seq;
      }
    }
  }
  ++reads_done_;
  return chosen.payload;
}

obs::PhaseCounters SwmrAtomicReader::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.reads = reads_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

}  // namespace nadreg::core
