#include "core/layout.h"

#include <cassert>

namespace nadreg::core {

namespace {
// Layout ids occupy the top half of the 10-bit object space so they never
// collide with small ad-hoc ids passed directly to the emulations.
constexpr std::uint32_t kLayoutBase = 512;
constexpr std::uint32_t kMaxNames = 512;
}  // namespace

StaticLayout::StaticLayout(const FarmConfig& farm,
                           std::vector<std::string> names)
    : farm_(farm) {
  assert(names.size() <= kMaxNames && "StaticLayout: too many names");
  std::uint32_t next = kLayoutBase;
  for (const std::string& name : names) {
    auto [it, inserted] = ids_.emplace(name, next);
    assert(inserted && "StaticLayout: duplicate name");
    (void)it;
    ++next;
  }
}

bool StaticLayout::Has(const std::string& name) const {
  return ids_.contains(name);
}

std::uint32_t StaticLayout::ObjectId(const std::string& name) const {
  auto it = ids_.find(name);
  assert(it != ids_.end() && "StaticLayout: unknown object name");
  return it->second;
}

std::vector<RegisterId> StaticLayout::Registers(const std::string& name) const {
  return farm_.Spread(MakeBlock(ObjectId(name), Component::kFixed, 0));
}

std::unique_ptr<SwsrAtomicWriter> StaticLayout::SwsrWriter(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<SwsrAtomicWriter>(client, farm_, Registers(name),
                                            self);
}

std::unique_ptr<SwsrAtomicReader> StaticLayout::SwsrReader(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<SwsrAtomicReader>(client, farm_, Registers(name),
                                            self);
}

std::unique_ptr<SwmrAtomicReader> StaticLayout::SwmrReader(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<SwmrAtomicReader>(client, farm_, Registers(name),
                                            self);
}

std::unique_ptr<MwsrWriter> StaticLayout::MwsrRegisterWriter(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<MwsrWriter>(client, farm_, Registers(name), self);
}

std::unique_ptr<MwsrReader> StaticLayout::MwsrRegisterReader(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<MwsrReader>(client, farm_, Registers(name), self);
}

std::unique_ptr<MwmrAtomic> StaticLayout::MwmrRegister(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<MwmrAtomic>(client, farm_, ObjectId(name), self);
}

std::unique_ptr<OneShotRegister> StaticLayout::OneShot(
    BaseRegisterClient& client, const std::string& name,
    ProcessId self) const {
  return std::make_unique<OneShotRegister>(client, farm_, Registers(name),
                                           self);
}

std::unique_ptr<StickyBit> StaticLayout::Sticky(BaseRegisterClient& client,
                                                const std::string& name,
                                                ProcessId self) const {
  return std::make_unique<StickyBit>(client, farm_, Registers(name), self);
}

}  // namespace nadreg::core
