// Uniform atomic SWMR register from 2t+1 fail-prone base registers, for
// systems where *processes are reliable* (Section 4.2) — the "Yes"
// Single-Writer/Multi-Reader cell of Table 2.
//
// The writer is the same sequence-number writer as in Section 3.2. A READ
// has two phases:
//
//   choose-value:  read a majority; let (v0, s0) be the pair with the
//                  largest sequence number.
//   wait:          keep reading all base registers until a majority have
//                  sequence numbers >= s0. Then return v0.
//
// The wait phase makes the READ's chosen value *stable*: once the READ
// returns, (>= s0) is on a majority, so every later READ's choose-value
// phase — which reads a majority — picks a sequence number >= s0. That is
// what rules out new-old inversion between different readers and makes the
// register atomic rather than merely regular.
//
// This implementation is intentionally NOT wait-free: the wait phase can
// block if the writer crashes mid-WRITE (its value then sits on fewer than
// t+1 registers forever). Theorem 1 proves no uniform *wait-free* atomic
// SWMR implementation exists, so blocking is not an artifact — it is the
// price the paper shows must be paid. Under reliable processes (Table 2's
// hypothesis) the writer's background writes eventually land and the wait
// phase terminates.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/codec.h"
#include "core/config.h"
#include "core/register_set.h"
#include "core/swsr_atomic.h"

namespace nadreg::core {

/// The SWMR writer is identical to the SWSR writer.
using SwmrAtomicWriter = SwsrAtomicWriter;

/// Reader endpoint; construct one per reader process (any number).
class SwmrAtomicReader {
 public:
  SwmrAtomicReader(BaseRegisterClient& client, const FarmConfig& farm,
                   std::vector<RegisterId> regs, ProcessId self);

  /// READ(). Blocks until atomicity can be guaranteed (see header note);
  /// under reliable processes and at most t crashed disks it terminates.
  std::string Read();

  /// READ with a deadline, for harnesses that must not hang when they
  /// deliberately violate the reliability hypothesis. Returns nullopt on
  /// timeout (the READ is abandoned; this is outside the model).
  std::optional<std::string> ReadWithDeadline(std::chrono::milliseconds d);

 private:
  std::optional<std::string> ReadImpl(
      std::optional<std::chrono::steady_clock::time_point> deadline);

  RegisterSet set_;
  std::size_t quorum_;
};

}  // namespace nadreg::core
