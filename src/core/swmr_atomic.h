/// \file
/// Uniform atomic SWMR register from 2t+1 fail-prone base registers, for
/// systems where *processes are reliable* (Section 4.2) — the "Yes"
/// Single-Writer/Multi-Reader cell of Table 2.
///
/// The writer is the same sequence-number writer as in Section 3.2. A READ
/// has two phases:
///
///   choose-value:  read a majority; let (v0, s0) be the pair with the
///                  largest sequence number.
///   wait:          keep reading all base registers until a majority have
///                  sequence numbers >= s0. Then return v0.
///
/// The wait phase makes the READ's chosen value *stable*: once the READ
/// returns, (>= s0) is on a majority, so every later READ's choose-value
/// phase — which reads a majority — picks a sequence number >= s0. That is
/// what rules out new-old inversion between different readers and makes the
/// register atomic rather than merely regular.
///
/// This implementation is intentionally NOT wait-free: the wait phase can
/// block if the writer crashes mid-WRITE (its value then sits on fewer than
/// t+1 registers forever). Theorem 1 proves no uniform *wait-free* atomic
/// SWMR implementation exists, so blocking is not an artifact — it is the
/// price the paper shows must be paid. Under reliable processes (Table 2's
/// hypothesis) the writer's background writes eventually land and the wait
/// phase terminates.
///
/// Both READ phases are traced and timed ("swmr.choose_value_us",
/// "swmr.wait_us" in the global obs registry) — the wait phase is the
/// paper's blocking cost, now measurable.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/codec.h"
#include "common/op_options.h"
#include "common/status.h"
#include "core/config.h"
#include "core/register_set.h"
#include "core/swsr_atomic.h"
#include "obs/instrumented.h"

namespace nadreg::core {

/// The SWMR writer is identical to the SWSR writer.
using SwmrAtomicWriter = SwsrAtomicWriter;

/// Reader endpoint; construct one per reader process (any number).
class SwmrAtomicReader : public obs::Instrumented {
 public:
  SwmrAtomicReader(BaseRegisterClient& client, const FarmConfig& farm,
                   std::vector<RegisterId> regs, ProcessId self);

  /// READ(). Blocks until atomicity can be guaranteed (see header note);
  /// under reliable processes and at most t crashed disks it terminates.
  std::string Read();

  /// Unified API: READ under an optional deadline/trace label. kTimeout =
  /// deadline expired (the READ is abandoned; this is outside the model).
  Expected<std::string> Read(const OpOptions& opts);

  /// Back-compat shim for the pre-OpOptions deadline API.
  std::optional<std::string> ReadWithDeadline(std::chrono::milliseconds d);

  obs::PhaseCounters op_metrics() const override;

 private:
  Expected<std::string> ReadImpl(OpDeadline deadline,
                                 const std::string& label);

  RegisterSet set_;
  std::size_t quorum_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace nadreg::core
