#include "core/swsr_atomic.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nadreg::core {

namespace {

obs::Histogram& WriteHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("swsr.write_us");
  return h;
}
obs::Histogram& ReadHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("swsr.read_us");
  return h;
}

}  // namespace

SwsrAtomicWriter::SwsrAtomicWriter(BaseRegisterClient& client,
                                   const FarmConfig& farm,
                                   std::vector<RegisterId> regs,
                                   ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWSR emulation needs 2t+1 base registers");
}

void SwsrAtomicWriter::Write(const std::string& v) {
  Status s = Write(v, OpOptions{});
  assert(s.ok());
  (void)s;
}

Status SwsrAtomicWriter::Write(const std::string& v, const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();
  obs::ScopedPhase phase(&WriteHist(), "swsr", "write", opts.label);
  ++seq_;
  TaggedValue tv{set_.self(), seq_, v};
  auto ticket = set_.WriteAll(EncodeTaggedValue(tv));
  if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("swsr write: quorum not reached before deadline");
  }
  ++writes_done_;
  return Status::Ok();
}

obs::PhaseCounters SwsrAtomicWriter::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.writes = writes_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

SwsrAtomicReader::SwsrAtomicReader(BaseRegisterClient& client,
                                   const FarmConfig& farm,
                                   std::vector<RegisterId> regs,
                                   ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWSR emulation needs 2t+1 base registers");
}

SwsrRegularReader::SwsrRegularReader(BaseRegisterClient& client,
                                     const FarmConfig& farm,
                                     std::vector<RegisterId> regs,
                                     ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWSR emulation needs 2t+1 base registers");
}

std::string SwsrRegularReader::Read() {
  auto v = Read(OpOptions{});
  assert(v.ok());
  return std::move(*v);
}

Expected<std::string> SwsrRegularReader::Read(const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();
  obs::ScopedPhase phase(&ReadHist(), "swsr", "read.regular", opts.label);
  auto ticket = set_.ReadAll();
  if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("swsr read: quorum not reached before deadline");
  }
  TaggedValue best;  // per-READ only: no memo
  for (const auto& [idx, bytes] : ticket.Results()) {
    auto tv = DecodeTaggedValue(bytes);
    if (!tv) continue;
    if (tv->seq > best.seq) best = std::move(*tv);
  }
  ++reads_done_;
  return best.payload;
}

obs::PhaseCounters SwsrRegularReader::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.reads = reads_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

std::string SwsrAtomicReader::Read() {
  auto v = Read(OpOptions{});
  assert(v.ok());
  return std::move(*v);
}

Expected<std::string> SwsrAtomicReader::Read(const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();
  obs::ScopedPhase phase(&ReadHist(), "swsr", "read", opts.label);
  auto ticket = set_.ReadAll();
  if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("swsr read: quorum not reached before deadline");
  }
  for (const auto& [idx, bytes] : ticket.Results()) {
    auto tv = DecodeTaggedValue(bytes);
    // A base register can only contain bytes some writer stored; decode
    // failure would mean corruption outside the model. Skip defensively.
    if (!tv) continue;
    if (tv->seq > best_.seq) best_ = std::move(*tv);
  }
  ++reads_done_;
  return best_.payload;
}

obs::PhaseCounters SwsrAtomicReader::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.reads = reads_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

}  // namespace nadreg::core
