#include "core/swsr_atomic.h"

#include <cassert>

namespace nadreg::core {

SwsrAtomicWriter::SwsrAtomicWriter(BaseRegisterClient& client,
                                   const FarmConfig& farm,
                                   std::vector<RegisterId> regs,
                                   ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWSR emulation needs 2t+1 base registers");
}

void SwsrAtomicWriter::Write(const std::string& v) {
  ++seq_;
  TaggedValue tv{set_.self(), seq_, v};
  auto ticket = set_.WriteAll(EncodeTaggedValue(tv));
  set_.Await(ticket, quorum_);
}

SwsrAtomicReader::SwsrAtomicReader(BaseRegisterClient& client,
                                   const FarmConfig& farm,
                                   std::vector<RegisterId> regs,
                                   ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWSR emulation needs 2t+1 base registers");
}

SwsrRegularReader::SwsrRegularReader(BaseRegisterClient& client,
                                     const FarmConfig& farm,
                                     std::vector<RegisterId> regs,
                                     ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "SWSR emulation needs 2t+1 base registers");
}

std::string SwsrRegularReader::Read() {
  auto ticket = set_.ReadAll();
  set_.Await(ticket, quorum_);
  TaggedValue best;  // per-READ only: no memo
  for (const auto& [idx, bytes] : ticket.Results()) {
    auto tv = DecodeTaggedValue(bytes);
    if (!tv) continue;
    if (tv->seq > best.seq) best = std::move(*tv);
  }
  return best.payload;
}

std::string SwsrAtomicReader::Read() {
  auto ticket = set_.ReadAll();
  set_.Await(ticket, quorum_);
  for (const auto& [idx, bytes] : ticket.Results()) {
    auto tv = DecodeTaggedValue(bytes);
    // A base register can only contain bytes some writer stored; decode
    // failure would mean corruption outside the model. Skip defensively.
    if (!tv) continue;
    if (tv->seq > best_.seq) best_ = std::move(*tv);
  }
  return best_.payload;
}

}  // namespace nadreg::core
