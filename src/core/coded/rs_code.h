/// \file
/// Systematic Reed–Solomon erasure code over GF(2^8) — the fragment codec
/// behind the coded MWMR emulation (core::CodedMwmr).
///
/// An (n, k) code splits a value into k data shards and derives n-k parity
/// shards such that ANY k of the n fragments reconstruct the value — the
/// classic maximum-distance-separable property that turns an f-crash-prone
/// farm of n disks into storage costing ~n/k instead of n full copies
/// (Zorgui et al.; the Cadambe–Wang–Lynch bound says ~n/(n-k+1)... is the
/// floor for safe emulations, so n/k with n >= 2f+k is within a constant
/// of optimal while staying decodable from any quorum intersection).
///
/// Construction: a Vandermonde matrix over GF(2^8) (evaluation points
/// 0..n-1, reduction polynomial 0x11d) post-multiplied by the inverse of
/// its top k x k block, making the top k rows the identity — fragments
/// 0..k-1 are verbatim slices of the value (systematic), and any k rows of
/// the generator remain invertible. Pure C++, no dependencies, table-driven
/// field arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace nadreg::core {

/// An immutable (n, k) systematic Reed–Solomon code. Cheap to copy; all
/// methods are const and thread-safe.
class RsCode {
 public:
  /// Largest supported fragment count (field size minus the zero point is
  /// not a constraint here — any 255 distinct evaluation points fit).
  static constexpr unsigned kMaxFragments = 255;

  /// Builds the generator for 1 <= k <= n <= kMaxFragments.
  static Expected<RsCode> Make(unsigned n, unsigned k);

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }

  /// Bytes per fragment for a value of `value_size` bytes:
  /// ceil(value_size / k); 0 for the empty value.
  std::size_t FragmentSize(std::size_t value_size) const {
    return (value_size + k_ - 1) / k_;
  }

  /// Encodes `value` into n fragments of FragmentSize(value.size()) bytes
  /// each (the last data shard is zero-padded). Fragments 0..k-1 are
  /// verbatim slices of `value` (systematic).
  std::vector<std::string> Encode(std::string_view value) const;

  /// Reconstructs the original value from any k fragments, given as
  /// (fragment index, fragment bytes) pairs. Requires >= k entries with
  /// distinct in-range indices and equal sizes consistent with
  /// `value_size`; extra entries beyond the first k usable ones are
  /// ignored. Fails (never crashes) on malformed input.
  Expected<std::string> Decode(
      const std::vector<std::pair<unsigned, std::string_view>>& frags,
      std::size_t value_size) const;

 private:
  RsCode(unsigned n, unsigned k, std::vector<std::uint8_t> gen)
      : n_(n), k_(k), gen_(std::move(gen)) {}

  std::uint8_t Gen(unsigned row, unsigned col) const {
    return gen_[row * k_ + col];
  }

  unsigned n_;
  unsigned k_;
  std::vector<std::uint8_t> gen_;  // n x k generator, row-major
};

}  // namespace nadreg::core
