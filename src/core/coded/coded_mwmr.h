/// \file
/// Storage-efficient atomic MWMR register from erasure-coded fragments
/// spread over n fail-prone disks ("Storage-Efficient Shared Memory
/// Emulation", Zorgui et al.; storage floor: Cadambe–Wang–Lynch).
///
/// Where the replicated emulations store a full value per disk (n× bytes
/// at rest), each disk here holds a *coded cell* (common/coded_cell.h):
/// one fragment of 1/k of the value per write tag, plus the highest tag
/// known committed at that disk. Steady-state storage is ~(n/k)× — e.g.
/// 1.6× at n=8, k=5 instead of 8×.
///
///   WRITE(v):
///     1. read cells from a quorum; tag t := (max seen seq + 1, self)
///     2. RS-encode v into n fragments; merge Put(t, frag_i) into disk i
///        (all n issued); await a write quorum
///     3. merge Commit(t, frag_i) into disk i (all n); await a write
///        quorum — the commit carries each disk's fragment again, so a
///        commit quorum IS a fragment quorum
///   READ:
///     1. read cells from a quorum; t* := max committed tag seen
///     2. pick the highest tag >= t* with >= k CRC-valid distinct-index
///        fragments among the responses; none assemblable -> retry
///        (deadline-bounded); nothing committed and nothing assemblable ->
///        initial value
///     3. decode from any k fragments, re-encode into n fragments, merge
///        Commit(chosen, frag_i) into disk i; await a write quorum (the
///        reader write-back that forbids new-old inversion AND
///        re-propagates an in-flight tag's fragments before help-
///        committing it — a decoded tag may so far live on as few as
///        k < q disks if its writer crashed mid-put)
///     4. return
///
/// Quorum math: with q = n - f and n >= 2f + k, any two quorums intersect
/// in >= n - 2f >= k disks. Because every commit carries the destination
/// disk's fragment, a disk whose committed tag is t always holds its
/// fragment of t; so once any Commit(t) round reaches a write quorum —
/// the precondition for an op returning t — every read quorum holds >= k
/// disks with t's fragment, until a strictly higher tag commits there and
/// the reader targets the newer write instead (tag-completeness
/// invariant, DESIGN.md §16). CodedOptions derives the largest tolerated
/// f, f = floor((n-k)/2).
///
/// The substrate must support the coded-cell join
/// (BaseRegisterClient::SupportsMerge); plain read/write disks cannot
/// express "add a fragment without destroying the previous one" without
/// doubling storage. The join is a fixed, order-independent function —
/// strictly weaker than an active disk's arbitrary RMW (no consensus
/// power), strictly stronger than the paper's plain NAD.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/coded_cell.h"
#include "common/op_options.h"
#include "common/status.h"
#include "core/coded/rs_code.h"
#include "core/register_set.h"
#include "obs/instrumented.h"

namespace nadreg::core {

/// Code geometry of a coded register deployment — the coded counterpart
/// of FarmConfig{t}. All endpoints of one object must agree on it (it is
/// part of the on-disk format).
struct CodedOptions {
  std::uint32_t n = 8;  // disks = fragments per write
  std::uint32_t k = 5;  // fragments sufficient to decode

  /// Largest crash budget the geometry tolerates: n >= 2f + k.
  std::uint32_t f() const { return (n - k) / 2; }
  /// Read/write quorum size (q = n - f; two quorums overlap in >= k).
  std::uint32_t quorum() const { return n - f(); }
};

/// One process's endpoint of an erasure-coded atomic MWMR register.
/// Like the other emulation endpoints, an instance serves one thread;
/// concurrent processes each construct their own over the same object id.
class CodedMwmr : public obs::Instrumented {
 public:
  /// Validates the geometry and the substrate (client.SupportsMerge()
  /// must hold). `object` scopes the on-disk address space exactly as for
  /// the replicated emulations. `client` must outlive the instance.
  static Expected<CodedMwmr> Make(BaseRegisterClient& client,
                                  std::uint32_t object, ProcessId self,
                                  CodedOptions opts);

  // --- Unified API (deadline + trace label; common/op_options.h) ----------

  /// kTimeout = abandoned past the deadline. Like every emulation here,
  /// an abandoned WRITE may still take effect through its pending merges.
  Status Write(const std::string& value, const OpOptions& opts);
  /// nullopt = initial value (no write visible).
  Expected<std::optional<std::string>> Read(const OpOptions& opts);

  // --- Bare back-compat shapes --------------------------------------------
  void Write(const std::string& value) { (void)Write(value, OpOptions{}); }
  std::optional<std::string> Read() {
    auto r = Read(OpOptions{});
    return r.ok() ? *r : std::nullopt;
  }

  const CodedOptions& options() const { return opts_; }

  /// Bytes this endpoint put on / took off the substrate (delta payloads
  /// out, cell payloads in) — the bench's bytes-on-wire accounting,
  /// transport-independent.
  std::uint64_t WireBytesOut() const { return wire_bytes_out_; }
  std::uint64_t WireBytesIn() const { return wire_bytes_in_; }

  /// Completed ops, timeouts, read retries, and the quorum engine's
  /// counters.
  obs::PhaseCounters op_metrics() const override;

  std::uint64_t read_retries() const { return read_retries_; }

 private:
  CodedMwmr(BaseRegisterClient& client, std::uint32_t object, ProcessId self,
            CodedOptions opts, RsCode rs);

  /// One read round: quorum-read the cells, pick the best assemblable
  /// tag. Outcomes: value decoded / nothing written yet / retry needed.
  struct ReadAttempt {
    bool timed_out = false;
    bool decided = false;  // value or initial-value; !decided => retry
    CodedTag tag;          // seq 0 = initial value
    std::optional<std::string> value;
  };
  ReadAttempt AttemptRead(OpDeadline deadline);

  /// RS-encodes `value` under `tag` into the n per-disk fragments
  /// (index, geometry, crc filled in) — the payloads of both the Put
  /// phase and the fragment-carrying Commit phase.
  std::vector<CodedFragment> MakeFragments(const CodedTag& tag,
                                           const std::string& value);

  /// Merges Commit(frags[i].tag, frags[i]) into disk i for all n disks
  /// and awaits a write quorum. Carrying the fragments makes the commit
  /// quorum a fragment quorum: an evicted Put fragment is re-installed,
  /// and a reader help-committing an in-flight tag re-propagates the
  /// value it decoded (frags.size() must be n, one shared tag).
  Status CommitQuorum(const std::vector<CodedFragment>& frags,
                      OpDeadline deadline);

  BaseRegisterClient& client_;
  CodedOptions opts_;
  RsCode rs_;
  // unique_ptr: RegisterSet is pinned (self-referencing completion
  // closures), while the endpoint itself stays movable for Expected<>.
  std::unique_ptr<RegisterSet> set_;
  // Stable backing for one read attempt's candidate fragment views
  // (deque: growth never relocates elements, so views stay valid).
  std::deque<std::string> owned_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t read_retries_ = 0;
  std::uint64_t wire_bytes_out_ = 0;
  std::uint64_t wire_bytes_in_ = 0;
};

}  // namespace nadreg::core
