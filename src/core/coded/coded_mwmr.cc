#include "core/coded/coded_mwmr.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "core/address.h"
#include "obs/metrics.h"

namespace nadreg::core {

namespace {

obs::Histogram& HistDecodeUs() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("core.coded.decode_us");
  return h;
}

}  // namespace

Expected<CodedMwmr> CodedMwmr::Make(BaseRegisterClient& client,
                                    std::uint32_t object, ProcessId self,
                                    CodedOptions opts) {
  if (opts.k < 1 || opts.k > opts.n) {
    return Status::Invalid("coded: need 1 <= k <= n");
  }
  if (opts.n < 2 * opts.f() + opts.k) {
    return Status::Invalid("coded: geometry violates n >= 2f + k");
  }
  if (!client.SupportsMerge()) {
    return Status::Invalid(
        "coded: substrate lacks the coded-cell merge operation");
  }
  auto rs = RsCode::Make(opts.n, opts.k);
  if (!rs.ok()) return rs.status();
  return CodedMwmr(client, object, self, opts, std::move(*rs));
}

CodedMwmr::CodedMwmr(BaseRegisterClient& client, std::uint32_t object,
                     ProcessId self, CodedOptions opts, RsCode rs)
    : client_(client), opts_(opts), rs_(std::move(rs)) {
  std::vector<RegisterId> regs;
  regs.reserve(opts_.n);
  for (DiskId d = 0; d < opts_.n; ++d) {
    regs.push_back(RegisterId{d, MakeBlock(object, Component::kCodedCell, 0)});
  }
  set_ = std::make_unique<RegisterSet>(client, self, std::move(regs));
}

std::vector<CodedFragment> CodedMwmr::MakeFragments(const CodedTag& tag,
                                                    const std::string& value) {
  std::vector<std::string> shards = rs_.Encode(value);
  std::vector<CodedFragment> frags(opts_.n);
  for (std::uint32_t i = 0; i < opts_.n; ++i) {
    CodedFragment& f = frags[i];
    f.tag = tag;
    f.index = static_cast<std::uint8_t>(i);
    f.n = static_cast<std::uint8_t>(opts_.n);
    f.k = static_cast<std::uint8_t>(opts_.k);
    f.value_size = static_cast<std::uint32_t>(value.size());
    f.crc = Crc32(shards[i]);
    f.bytes = std::move(shards[i]);
  }
  return frags;
}

Status CodedMwmr::CommitQuorum(const std::vector<CodedFragment>& frags,
                               OpDeadline deadline) {
  std::vector<Value> deltas;
  deltas.reserve(opts_.n);
  for (std::uint32_t i = 0; i < opts_.n; ++i) {
    deltas.push_back(EncodeCodedCommit(frags[i]));
    wire_bytes_out_ += deltas.back().size();
  }
  auto ticket = set_->MergeEach(std::move(deltas));
  if (!set_->AwaitUntil(ticket, opts_.quorum(), deadline)) {
    return Status::Timeout("coded: commit quorum");
  }
  return Status::Ok();
}

Status CodedMwmr::Write(const std::string& value, const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();

  // Phase 1: quorum-read the cells to pick a fresh tag. Fragment tags
  // count too — a writer must move past in-flight (uncommitted) writes it
  // can see, or its tag could collide with a concurrent writer's.
  auto read_ticket = set_->ReadAll();
  if (!set_->AwaitUntil(read_ticket, opts_.quorum(), deadline)) {
    ++timeouts_;
    return Status::Timeout("coded write: read phase");
  }
  SeqNum max_seq = 0;
  for (const auto& [idx, bytes] : read_ticket.Results()) {
    wire_bytes_in_ += bytes.size();
    auto cell = DecodeCodedCell(bytes);
    if (!cell.ok()) continue;  // corrupt cell: ignore, like a stale disk
    max_seq = std::max(max_seq, cell->committed.seq);
    for (const CodedFragment& f : cell->frags) {
      max_seq = std::max(max_seq, f.tag.seq);
    }
  }
  const CodedTag tag{max_seq + 1, set_->self()};

  // Phase 2: encode and fan one fragment out per disk.
  const std::vector<CodedFragment> frags = MakeFragments(tag, value);
  std::vector<Value> deltas;
  deltas.reserve(opts_.n);
  for (const CodedFragment& f : frags) {
    deltas.push_back(EncodeCodedPut(f));
    wire_bytes_out_ += deltas.back().size();
  }
  auto put_ticket = set_->MergeEach(std::move(deltas));
  if (!set_->AwaitUntil(put_ticket, opts_.quorum(), deadline)) {
    ++timeouts_;
    return Status::Timeout("coded write: put quorum");
  }

  // Phase 3: publish. The commit carries each disk's fragment again, so
  // once it reaches a quorum the write is visible-and-stable: any later
  // read quorum intersects the commit quorum in >= k disks that hold
  // both committed >= tag and the fragment — even if a racing write
  // storm evicted the phase-2 fragment before this commit arrived
  // (DESIGN.md §16).
  if (Status s = CommitQuorum(frags, deadline); !s.ok()) {
    ++timeouts_;
    return s;
  }
  ++writes_done_;
  return Status::Ok();
}

CodedMwmr::ReadAttempt CodedMwmr::AttemptRead(OpDeadline deadline) {
  ReadAttempt out;
  auto ticket = set_->ReadAll();
  if (!set_->AwaitUntil(ticket, opts_.quorum(), deadline)) {
    out.timed_out = true;
    return out;
  }
  // Keep the results alive: candidate fragment views alias these Values.
  const auto results = ticket.Results();
  CodedTag t_star;  // max committed tag across the quorum
  struct Candidate {
    std::vector<std::pair<unsigned, std::string_view>> frags;
    std::uint32_t value_size = 0;
  };
  std::map<CodedTag, Candidate> candidates;
  for (const auto& [idx, bytes] : results) {
    wire_bytes_in_ += bytes.size();
    auto cell = DecodeCodedCell(bytes);
    if (!cell.ok()) continue;
    t_star = std::max(t_star, cell->committed);
    for (const CodedFragment& f : cell->frags) {
      // Reject wrong-geometry or corrupted fragments before they can
      // reach the decoder.
      if (f.n != opts_.n || f.k != opts_.k) continue;
      if (Crc32(f.bytes) != f.crc) continue;
      Candidate& c = candidates[f.tag];
      bool dup = false;
      for (const auto& [seen, unused] : c.frags) dup |= (seen == f.index);
      if (dup) continue;
      c.value_size = f.value_size;
      // The view aliases cell->frags — copy the bytes somewhere stable.
      // Candidates are few (<= pending cap per cell), so materializing
      // them here is the simplest ownership story.
      c.frags.emplace_back(f.index, std::string_view{});
      owned_.push_back(f.bytes);
      c.frags.back().second = owned_.back();
    }
  }
  // Highest tag >= t* decodable from this quorum's responses. A tag above
  // t* is an in-flight write the reader helps commit — safe because the
  // help-commit re-propagates the decoded fragments to a write quorum
  // before this read returns (Read() below), even when the crashed
  // writer's put reached only k < q disks — and it keeps the retry loop
  // short under write storms.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (it->first < t_star) break;
    if (it->second.frags.size() < opts_.k) continue;
    const auto decode_start = std::chrono::steady_clock::now();
    auto value = rs_.Decode(it->second.frags, it->second.value_size);
    HistDecodeUs().ObserveSince(decode_start);
    if (!value.ok()) continue;
    out.decided = true;
    out.tag = it->first;
    out.value = std::move(*value);
    return out;
  }
  if (t_star.seq == 0) {
    // Nothing committed anywhere and nothing assemblable: the register
    // still holds its initial value.
    out.decided = true;
    return out;
  }
  return out;  // committed tag seen but not yet assemblable here: retry
}

Expected<std::optional<std::string>> CodedMwmr::Read(const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();
  for (;;) {
    owned_.clear();
    ReadAttempt attempt = AttemptRead(deadline);
    if (attempt.timed_out) {
      ++timeouts_;
      return Status::Timeout("coded read: read quorum");
    }
    if (!attempt.decided) {
      // A committed tag was visible but < k of its fragments were — a
      // quorum raced a concurrent write's put phase. The tag-completeness
      // invariant guarantees a fresh quorum read eventually assembles the
      // (then-)highest committed tag, so retry until the deadline.
      ++read_retries_;
      if (deadline && std::chrono::steady_clock::now() >= *deadline) {
        ++timeouts_;
        return Status::Timeout("coded read: no assemblable tag");
      }
      continue;
    }
    if (attempt.tag.seq == 0) {
      ++reads_done_;
      return std::optional<std::string>{};  // initial value
    }
    // Reader write-back: make the returned tag committed at a quorum
    // BEFORE returning, so no later read can decide an older tag
    // (new-old inversion). The commit deltas carry re-encoded fragments
    // of the decoded value — mandatory when the chosen tag is an
    // in-flight write whose put never reached a full quorum (it may
    // live on just k disks): committing it without re-propagating the
    // fragments would publish a tag later quorums cannot decode.
    if (Status s = CommitQuorum(MakeFragments(attempt.tag, *attempt.value),
                                deadline);
        !s.ok()) {
      ++timeouts_;
      return s;
    }
    ++reads_done_;
    return std::optional<std::string>{std::move(*attempt.value)};
  }
}

obs::PhaseCounters CodedMwmr::op_metrics() const {
  obs::PhaseCounters out = set_->op_metrics();
  out.reads = reads_done_;
  out.writes = writes_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

}  // namespace nadreg::core
