#include "core/coded/rs_code.h"

#include <array>

namespace nadreg::core {

namespace {

// GF(2^8) with the conventional reduction polynomial x^8+x^4+x^3+x^2+1
// (0x11d) and generator 2. exp_ is doubled so GfMul can skip the mod-255
// wrap on the log sum.
struct GfTables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};

  GfTables() {
    std::uint16_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const GfTables& Gf() {
  static const GfTables tables;
  return tables;
}

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = Gf();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t GfInv(std::uint8_t a) {
  const GfTables& t = Gf();
  return t.exp[255 - t.log[a]];
}

/// x^p in GF(2^8), with the 0^0 = 1 convention the Vandermonde rows need.
std::uint8_t GfPow(std::uint8_t x, unsigned p) {
  std::uint8_t r = 1;
  for (unsigned i = 0; i < p; ++i) r = GfMul(r, x);
  return r;
}

/// In-place Gauss–Jordan inverse of a k x k matrix (row-major). Returns
/// false if singular — impossible for the matrices this file builds, but
/// Decode stays total on that path rather than asserting.
bool GfInvertMatrix(std::vector<std::uint8_t>& m, unsigned k) {
  std::vector<std::uint8_t> inv(static_cast<std::size_t>(k) * k, 0);
  for (unsigned i = 0; i < k; ++i) inv[i * k + i] = 1;
  for (unsigned col = 0; col < k; ++col) {
    unsigned pivot = col;
    while (pivot < k && m[pivot * k + col] == 0) ++pivot;
    if (pivot == k) return false;
    if (pivot != col) {
      for (unsigned j = 0; j < k; ++j) {
        std::swap(m[pivot * k + j], m[col * k + j]);
        std::swap(inv[pivot * k + j], inv[col * k + j]);
      }
    }
    const std::uint8_t scale = GfInv(m[col * k + col]);
    for (unsigned j = 0; j < k; ++j) {
      m[col * k + j] = GfMul(m[col * k + j], scale);
      inv[col * k + j] = GfMul(inv[col * k + j], scale);
    }
    for (unsigned row = 0; row < k; ++row) {
      if (row == col) continue;
      const std::uint8_t factor = m[row * k + col];
      if (factor == 0) continue;
      for (unsigned j = 0; j < k; ++j) {
        m[row * k + j] ^= GfMul(factor, m[col * k + j]);
        inv[row * k + j] ^= GfMul(factor, inv[col * k + j]);
      }
    }
  }
  m = std::move(inv);
  return true;
}

}  // namespace

Expected<RsCode> RsCode::Make(unsigned n, unsigned k) {
  if (k < 1 || k > n || n > kMaxFragments) {
    return Status::Invalid("rs_code: need 1 <= k <= n <= 255");
  }
  // Vandermonde rows at distinct points 0..n-1: any k of them (all k
  // columns kept) form a smaller Vandermonde with distinct points, hence
  // invertible. Right-multiplying by the inverse of the top k x k block
  // preserves that while turning the top into the identity (systematic).
  std::vector<std::uint8_t> vand(static_cast<std::size_t>(n) * k);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < k; ++j) {
      vand[i * k + j] = GfPow(static_cast<std::uint8_t>(i), j);
    }
  }
  std::vector<std::uint8_t> top(vand.begin(), vand.begin() + k * k);
  if (!GfInvertMatrix(top, k)) {
    return Status::Invalid("rs_code: Vandermonde block not invertible");
  }
  std::vector<std::uint8_t> gen(static_cast<std::size_t>(n) * k, 0);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < k; ++j) {
      std::uint8_t acc = 0;
      for (unsigned m = 0; m < k; ++m) {
        acc ^= GfMul(vand[i * k + m], top[m * k + j]);
      }
      gen[i * k + j] = acc;
    }
  }
  return RsCode(n, k, std::move(gen));
}

std::vector<std::string> RsCode::Encode(std::string_view value) const {
  const std::size_t s = FragmentSize(value.size());
  std::vector<std::string> frags(n_);
  // Data shard i is value[i*s, (i+1)*s), zero-padded at the tail.
  auto shard_byte = [&](unsigned i, std::size_t b) -> std::uint8_t {
    const std::size_t off = static_cast<std::size_t>(i) * s + b;
    return off < value.size() ? static_cast<std::uint8_t>(value[off]) : 0;
  };
  for (unsigned row = 0; row < n_; ++row) {
    std::string& out = frags[row];
    out.resize(s);
    if (row < k_) {
      for (std::size_t b = 0; b < s; ++b) {
        out[b] = static_cast<char>(shard_byte(row, b));
      }
      continue;
    }
    for (std::size_t b = 0; b < s; ++b) {
      std::uint8_t acc = 0;
      for (unsigned i = 0; i < k_; ++i) {
        acc ^= GfMul(Gen(row, i), shard_byte(i, b));
      }
      out[b] = static_cast<char>(acc);
    }
  }
  return frags;
}

Expected<std::string> RsCode::Decode(
    const std::vector<std::pair<unsigned, std::string_view>>& frags,
    std::size_t value_size) const {
  const std::size_t s = FragmentSize(value_size);
  std::vector<unsigned> idx;
  std::vector<std::string_view> data;
  idx.reserve(k_);
  data.reserve(k_);
  for (const auto& [i, bytes] : frags) {
    if (i >= n_ || bytes.size() != s) {
      return Status::Invalid("rs_code: bad fragment index or size");
    }
    bool dup = false;
    for (unsigned seen : idx) dup |= (seen == i);
    if (dup) continue;
    idx.push_back(i);
    data.push_back(bytes);
    if (idx.size() == k_) break;
  }
  if (idx.size() < k_) {
    return Status::Invalid("rs_code: fewer than k distinct fragments");
  }
  // Solve G_S * shards = fragments for the k chosen rows S.
  std::vector<std::uint8_t> sub(static_cast<std::size_t>(k_) * k_);
  for (unsigned r = 0; r < k_; ++r) {
    for (unsigned c = 0; c < k_; ++c) sub[r * k_ + c] = Gen(idx[r], c);
  }
  if (!GfInvertMatrix(sub, k_)) {
    return Status::Invalid("rs_code: singular decode matrix");
  }
  std::string out(static_cast<std::size_t>(k_) * s, '\0');
  for (unsigned i = 0; i < k_; ++i) {
    for (std::size_t b = 0; b < s; ++b) {
      std::uint8_t acc = 0;
      for (unsigned r = 0; r < k_; ++r) {
        acc ^= GfMul(sub[i * k_ + r], static_cast<std::uint8_t>(data[r][b]));
      }
      out[i * s + b] = static_cast<char>(acc);
    }
  }
  out.resize(value_size);
  return out;
}

}  // namespace nadreg::core
