/// \file
/// Uniform wait-free *sequentially consistent* MWSR register from 2t+1
/// fail-prone base registers (Figure 2) — the "Yes" Multi-Writer/
/// Single-Reader cell of Table 3.
///
///   WRITER q:  local seq_q. WRITE(v): ++seq_q; write (q, seq_q, v) to all
///              2t+1 base registers; wait for t+1 to complete.
///   READER p:  local lastv and an (unbounded, lazily grown) map seqs[]
///              indexed by writer id. READ: read a majority; if some triple
///              (q, s, v) read has s > seqs[q], pick one such triple (the
///              paper: "it does not matter which"), set seqs[q] := s,
///              lastv := v. Return lastv.
///
/// The reader's per-writer freshness map is what makes this *uniform*: it
/// grows with the set of writers actually observed, never with a declared
/// process count. The implementation picks, among the fresher triples, the
/// one from the lowest base-register index — any deterministic rule is
/// allowed by the paper, and a fixed rule makes adversarial tests
/// reproducible.
///
/// This register is sequentially consistent but NOT atomic: the reader may
/// return writes of different writers out of real-time order (it serializes
/// them in its own discovery order). bench/table2 demonstrates the
/// non-atomicity with a concrete schedule; the property tests verify
/// sequential consistency over random schedules.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/codec.h"
#include "common/op_options.h"
#include "common/status.h"
#include "core/config.h"
#include "core/register_set.h"
#include "obs/instrumented.h"

namespace nadreg::core {

/// Writer endpoint; construct one per writer process (any number).
class MwsrWriter : public obs::Instrumented {
 public:
  MwsrWriter(BaseRegisterClient& client, const FarmConfig& farm,
             std::vector<RegisterId> regs, ProcessId self);

  /// WRITE(v). Wait-free.
  void Write(const std::string& v);

  /// Unified API: WRITE(v) under an optional deadline/trace label.
  Status Write(const std::string& v, const OpOptions& opts);

  obs::PhaseCounters op_metrics() const override;

 private:
  RegisterSet set_;
  std::size_t quorum_;
  SeqNum seq_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

/// Reader endpoint. Single designated reader: construct exactly one.
class MwsrReader : public obs::Instrumented {
 public:
  MwsrReader(BaseRegisterClient& client, const FarmConfig& farm,
             std::vector<RegisterId> regs, ProcessId self);

  /// READ(). Wait-free; returns lastv per Figure 2.
  std::string Read();

  /// Unified API: READ under an optional deadline/trace label. kTimeout =
  /// the majority read did not complete in time; the reader state
  /// (seqs[], lastv) is unchanged by a timed-out READ.
  Expected<std::string> Read(const OpOptions& opts);

  obs::PhaseCounters op_metrics() const override;

 private:
  RegisterSet set_;
  std::size_t quorum_;
  std::string lastv_;
  std::unordered_map<ProcessId, SeqNum> seqs_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace nadreg::core
