#include "core/mwsr_seqcst.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nadreg::core {

namespace {

obs::Histogram& WriteHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("mwsr.write_us");
  return h;
}
obs::Histogram& ReadHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("mwsr.read_us");
  return h;
}

}  // namespace

MwsrWriter::MwsrWriter(BaseRegisterClient& client, const FarmConfig& farm,
                       std::vector<RegisterId> regs, ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "MWSR emulation needs 2t+1 base registers");
}

void MwsrWriter::Write(const std::string& v) {
  Status s = Write(v, OpOptions{});
  assert(s.ok());
  (void)s;
}

Status MwsrWriter::Write(const std::string& v, const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();
  obs::ScopedPhase phase(&WriteHist(), "mwsr", "write", opts.label);
  ++seq_;
  TaggedValue tv{set_.self(), seq_, v};
  auto ticket = set_.WriteAll(EncodeTaggedValue(tv));
  if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("mwsr write: quorum not reached before deadline");
  }
  ++writes_done_;
  return Status::Ok();
}

obs::PhaseCounters MwsrWriter::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.writes = writes_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

MwsrReader::MwsrReader(BaseRegisterClient& client, const FarmConfig& farm,
                       std::vector<RegisterId> regs, ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "MWSR emulation needs 2t+1 base registers");
}

std::string MwsrReader::Read() {
  auto v = Read(OpOptions{});
  assert(v.ok());
  return std::move(*v);
}

Expected<std::string> MwsrReader::Read(const OpOptions& opts) {
  const OpDeadline deadline = opts.Start();
  obs::ScopedPhase phase(&ReadHist(), "mwsr", "read", opts.label);
  auto ticket = set_.ReadAll();
  if (!set_.AwaitUntil(ticket, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("mwsr read: quorum not reached before deadline");
  }
  // Fixed deterministic rule: among fresher triples, take the one from the
  // lowest base-register index (Results() is index-sorted).
  for (const auto& [idx, bytes] : ticket.Results()) {
    auto tv = DecodeTaggedValue(bytes);
    if (!tv) continue;
    if (tv->seq == 0) continue;  // initial value, no writer
    auto it = seqs_.find(tv->writer);
    const SeqNum known = (it == seqs_.end()) ? 0 : it->second;
    if (tv->seq > known) {
      seqs_[tv->writer] = tv->seq;
      lastv_ = std::move(tv->payload);
      break;
    }
  }
  ++reads_done_;
  return lastv_;
}

obs::PhaseCounters MwsrReader::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.reads = reads_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

}  // namespace nadreg::core
