#include "core/mwsr_seqcst.h"

#include <cassert>

namespace nadreg::core {

MwsrWriter::MwsrWriter(BaseRegisterClient& client, const FarmConfig& farm,
                       std::vector<RegisterId> regs, ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "MWSR emulation needs 2t+1 base registers");
}

void MwsrWriter::Write(const std::string& v) {
  ++seq_;
  TaggedValue tv{set_.self(), seq_, v};
  auto ticket = set_.WriteAll(EncodeTaggedValue(tv));
  set_.Await(ticket, quorum_);
}

MwsrReader::MwsrReader(BaseRegisterClient& client, const FarmConfig& farm,
                       std::vector<RegisterId> regs, ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "MWSR emulation needs 2t+1 base registers");
}

std::string MwsrReader::Read() {
  auto ticket = set_.ReadAll();
  set_.Await(ticket, quorum_);
  // Fixed deterministic rule: among fresher triples, take the one from the
  // lowest base-register index (Results() is index-sorted).
  for (const auto& [idx, bytes] : ticket.Results()) {
    auto tv = DecodeTaggedValue(bytes);
    if (!tv) continue;
    if (tv->seq == 0) continue;  // initial value, no writer
    auto it = seqs_.find(tv->writer);
    const SeqNum known = (it == seqs_.end()) ? 0 : it->second;
    if (tv->seq > known) {
      seqs_[tv->writer] = tv->seq;
      lastv_ = std::move(tv->payload);
      break;
    }
  }
  return lastv_;
}

}  // namespace nadreg::core
