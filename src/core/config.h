/// \file
/// Deployment configuration: how many disks, how many may be faulty, and
/// which base registers an emulated object occupies.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace nadreg::core {

/// A farm of d = 2t+1 network-attached disks of which up to t may be
/// faulty (possibly full disk crashes). All emulations in this library
/// place replica j of every object on disk j, so that crashing up to t
/// disks removes at most t of any object's 2t+1 base registers.
struct FarmConfig {
  std::uint32_t t = 1;  // max faulty disks

  std::uint32_t num_disks() const { return 2 * t + 1; }
  /// Majority quorum: t+1 of 2t+1. Two quorums always intersect.
  std::uint32_t quorum() const { return t + 1; }

  /// The 2t+1 base registers holding block `b` across all disks.
  std::vector<RegisterId> Spread(BlockId b) const {
    std::vector<RegisterId> regs;
    regs.reserve(num_disks());
    for (DiskId d = 0; d < num_disks(); ++d) regs.push_back(RegisterId{d, b});
    return regs;
  }
};

}  // namespace nadreg::core
