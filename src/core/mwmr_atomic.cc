#include "core/mwmr_atomic.h"

#include <cassert>

namespace nadreg::core {

MwmrAtomic::MwmrAtomic(BaseRegisterClient& client, const FarmConfig& farm,
                       std::uint32_t object, ProcessId self)
    : client_(client),
      farm_(farm),
      object_(object),
      self_(self),
      snap_(client, farm, object, self) {}

OneShotRegister& MwmrAtomic::ValueReg(const Name& n) {
  auto it = value_regs_.find(n);
  if (it == value_regs_.end()) {
    auto reg = std::make_unique<OneShotRegister>(
        client_, farm_,
        farm_.Spread(MakeBlock(object_, Component::kValue, PackName(n))),
        self_);
    it = value_regs_.emplace(n, std::move(reg)).first;
  }
  return *it->second;
}

const SnapRecord* MwmrAtomic::ReadValue(const Name& n) {
  auto it = known_values_.find(n);
  if (it != known_values_.end()) return &it->second;
  auto bytes = ValueReg(n).Read();
  if (!bytes) return nullptr;
  auto rec = DecodeSnapRecord(*bytes);
  assert(rec.ok() && "stored v[n] record must decode");
  if (!rec.ok()) return nullptr;
  return &known_values_.emplace(n, std::move(*rec)).first->second;
}

void MwmrAtomic::WriteAs(const Name& name, const std::string& value) {
  std::vector<Name> snapshot = snap_.Snapshot(name);
  SnapRecord rec;
  rec.value = value;
  rec.snapshot = std::move(snapshot);
  Status s = ValueReg(name).Write(EncodeSnapRecord(rec));
  assert(s.ok() && "a name must be used for at most one WRITE");
  (void)s;
}

std::optional<std::string> MwmrAtomic::ReadAs(const Name& name) {
  std::vector<Name> snapshot = snap_.Snapshot(name);
  // Pick the member of T with the largest stored snapshot. Inclusion order
  // reduces to size order under Total Ordering; identical snapshots are
  // tie-broken by larger writer name (any fixed rule works).
  const SnapRecord* best = nullptr;
  Name best_name{};
  for (const Name& m : snapshot) {
    const SnapRecord* rec = ReadValue(m);
    if (rec == nullptr) continue;  // empty entry: reader or unfinished WRITE
    if (best == nullptr ||
        rec->snapshot.size() > best->snapshot.size() ||
        (rec->snapshot.size() == best->snapshot.size() && m > best_name)) {
      best = rec;
      best_name = m;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->value;
}

std::vector<std::pair<Name, SnapRecord>> MwmrAtomic::CollectAll() {
  std::vector<Name> snapshot = snap_.Snapshot(FreshName());
  std::vector<std::pair<Name, SnapRecord>> out;
  for (const Name& m : snapshot) {
    const SnapRecord* rec = ReadValue(m);
    if (rec != nullptr) out.emplace_back(m, *rec);
  }
  return out;
}

Name MwmrAtomic::FreshName() {
  assert(next_index_ < (1ULL << 16) &&
         "addressing discipline: at most 2^16 operations per process per "
         "object (see core/address.h)");
  return Name{self_, next_index_++};
}

void MwmrAtomic::Write(const std::string& value) {
  WriteAs(FreshName(), value);
}

std::optional<std::string> MwmrAtomic::Read() { return ReadAs(FreshName()); }

}  // namespace nadreg::core
