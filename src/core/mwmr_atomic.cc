#include "core/mwmr_atomic.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nadreg::core {

namespace {

obs::Histogram& WriteHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("mwmr.write_us");
  return h;
}
obs::Histogram& ReadHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("mwmr.read_us");
  return h;
}

}  // namespace

MwmrAtomic::MwmrAtomic(BaseRegisterClient& client, const FarmConfig& farm,
                       std::uint32_t object, ProcessId self, NameLayout layout)
    : client_(client),
      farm_(farm),
      object_(object),
      self_(self),
      layout_(layout),
      snap_(client, farm, object, self, /*pipelined_collect=*/true, layout) {}

OneShotRegister& MwmrAtomic::ValueReg(const Name& n) {
  auto it = value_regs_.find(n);
  if (it == value_regs_.end()) {
    auto reg = std::make_unique<OneShotRegister>(
        client_, farm_,
        farm_.Spread(MakeBlock(object_, Component::kValue, layout_.Pack(n))),
        self_);
    it = value_regs_.emplace(n, std::move(reg)).first;
  }
  return *it->second;
}

const SnapRecord* MwmrAtomic::ReadValue(const Name& n) {
  auto rec = ReadValueUntil(n, std::nullopt);
  assert(rec.ok());
  return *rec;
}

Expected<const SnapRecord*> MwmrAtomic::ReadValueUntil(const Name& n,
                                                       OpDeadline deadline) {
  auto it = known_values_.find(n);
  if (it != known_values_.end()) {
    return const_cast<const SnapRecord*>(&it->second);
  }
  auto bytes = ValueReg(n).ReadUntil(deadline);
  if (!bytes.ok()) return bytes.status();
  if (!bytes->has_value()) return static_cast<const SnapRecord*>(nullptr);
  auto rec = DecodeSnapRecord(**bytes);
  assert(rec.ok() && "stored v[n] record must decode");
  if (!rec.ok()) return static_cast<const SnapRecord*>(nullptr);
  return const_cast<const SnapRecord*>(
      &known_values_.emplace(n, std::move(*rec)).first->second);
}

void MwmrAtomic::WriteAs(const Name& name, const std::string& value) {
  Status s = WriteAsUntil(name, value, std::nullopt);
  assert(s.ok() && "a name must be used for at most one WRITE");
  (void)s;
}

Status MwmrAtomic::WriteAsUntil(const Name& name, const std::string& value,
                                OpDeadline deadline) {
  obs::ScopedPhase phase(&WriteHist(), "mwmr", "write");
  auto snapshot = snap_.SnapshotUntil(name, deadline);
  if (!snapshot.ok()) {
    ++timeouts_;
    return snapshot.status();
  }
  SnapRecord rec;
  rec.value = value;
  rec.snapshot = std::move(*snapshot);
  Status s = ValueReg(name).WriteUntil(EncodeSnapRecord(rec), deadline);
  if (!s.ok()) {
    ++timeouts_;
    return s;
  }
  ++writes_done_;
  return Status::Ok();
}

std::optional<std::string> MwmrAtomic::ReadAs(const Name& name) {
  auto v = ReadAsUntil(name, std::nullopt);
  assert(v.ok());
  return std::move(*v);
}

Expected<std::optional<std::string>> MwmrAtomic::ReadAsUntil(
    const Name& name, OpDeadline deadline) {
  obs::ScopedPhase phase(&ReadHist(), "mwmr", "read");
  auto snapshot = snap_.SnapshotUntil(name, deadline);
  if (!snapshot.ok()) {
    ++timeouts_;
    return snapshot.status();
  }
  // Pick the member of T with the largest stored snapshot. Inclusion order
  // reduces to size order under Total Ordering; identical snapshots are
  // tie-broken by larger writer name (any fixed rule works).
  const SnapRecord* best = nullptr;
  Name best_name{};
  for (const Name& m : *snapshot) {
    auto rec = ReadValueUntil(m, deadline);
    if (!rec.ok()) {
      ++timeouts_;
      return rec.status();
    }
    if (*rec == nullptr) continue;  // empty entry: reader or unfinished WRITE
    if (best == nullptr ||
        (*rec)->snapshot.size() > best->snapshot.size() ||
        ((*rec)->snapshot.size() == best->snapshot.size() && m > best_name)) {
      best = *rec;
      best_name = m;
    }
  }
  ++reads_done_;
  if (best == nullptr) return std::optional<std::string>{};
  return std::optional<std::string>{best->value};
}

std::vector<std::pair<Name, SnapRecord>> MwmrAtomic::CollectAll() {
  std::vector<Name> snapshot = snap_.Snapshot(FreshName());
  std::vector<std::pair<Name, SnapRecord>> out;
  for (const Name& m : snapshot) {
    const SnapRecord* rec = ReadValue(m);
    if (rec != nullptr) out.emplace_back(m, *rec);
  }
  return out;
}

Name MwmrAtomic::FreshName() {
  assert(next_index_ < (1ULL << 16) &&
         "addressing discipline: at most 2^16 operations per process per "
         "object (see core/address.h)");
  return Name{self_, next_index_++};
}

void MwmrAtomic::Write(const std::string& value) {
  WriteAs(FreshName(), value);
}

std::optional<std::string> MwmrAtomic::Read() { return ReadAs(FreshName()); }

Status MwmrAtomic::Write(const std::string& value, const OpOptions& opts) {
  obs::ScopedPhase phase(nullptr, "mwmr", "write_op", opts.label);
  return WriteAsUntil(FreshName(), value, opts.Start());
}

Expected<std::optional<std::string>> MwmrAtomic::Read(const OpOptions& opts) {
  obs::ScopedPhase phase(nullptr, "mwmr", "read_op", opts.label);
  return ReadAsUntil(FreshName(), opts.Start());
}

obs::PhaseCounters MwmrAtomic::op_metrics() const {
  obs::PhaseCounters out = snap_.op_metrics();
  out.reads = reads_done_;
  out.writes = writes_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

}  // namespace nadreg::core
