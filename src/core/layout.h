/// \file
/// StaticLayout: a name-based facade over the on-disk object address space.
///
/// Every emulated object needs an `object` id that all processes agree on
/// without coordination (uniformity). In practice deployments agree on a
/// CONFIGURATION — an ordered list of object names — and derive ids from
/// it deterministically. StaticLayout captures that idiom: construct it
/// from the same list everywhere (order defines the ids), then create
/// endpoint objects by name:
///
///   core::StaticLayout layout(cfg, {"leader-lease", "members", "log"});
///   auto reg  = layout.MwmrRegister(client, "members", my_pid);
///   auto log  = ...
///
/// The layout also hands out the base-register vectors for the
/// finite-register emulations (one block row per name), so application
/// code never touches raw block ids.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "core/address.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "core/oneshot.h"
#include "core/swmr_atomic.h"
#include "core/swsr_atomic.h"

namespace nadreg::core {

class StaticLayout {
 public:
  /// `names` must be identical (same order) at every process — it is the
  /// deployment's shared configuration. At most 512 names (the object id
  /// space is shared with ad-hoc ids; see core/address.h).
  StaticLayout(const FarmConfig& farm, std::vector<std::string> names);

  /// True if the configuration contains the name.
  bool Has(const std::string& name) const;

  /// The object id assigned to a name (aborts if unknown — a typo here is
  /// a deployment bug, not a runtime condition).
  std::uint32_t ObjectId(const std::string& name) const;

  /// The 2t+1 base registers backing a finite-register emulation of this
  /// name (block row derived from the object id).
  std::vector<RegisterId> Registers(const std::string& name) const;

  const FarmConfig& farm() const { return farm_; }

  // --- Endpoint factories ---------------------------------------------------
  // One endpoint per process per object; all take the process id.

  std::unique_ptr<SwsrAtomicWriter> SwsrWriter(BaseRegisterClient& client,
                                               const std::string& name,
                                               ProcessId self) const;
  std::unique_ptr<SwsrAtomicReader> SwsrReader(BaseRegisterClient& client,
                                               const std::string& name,
                                               ProcessId self) const;
  std::unique_ptr<SwmrAtomicReader> SwmrReader(BaseRegisterClient& client,
                                               const std::string& name,
                                               ProcessId self) const;
  std::unique_ptr<MwsrWriter> MwsrRegisterWriter(BaseRegisterClient& client,
                                                 const std::string& name,
                                                 ProcessId self) const;
  std::unique_ptr<MwsrReader> MwsrRegisterReader(BaseRegisterClient& client,
                                                 const std::string& name,
                                                 ProcessId self) const;
  std::unique_ptr<MwmrAtomic> MwmrRegister(BaseRegisterClient& client,
                                           const std::string& name,
                                           ProcessId self) const;
  std::unique_ptr<OneShotRegister> OneShot(BaseRegisterClient& client,
                                           const std::string& name,
                                           ProcessId self) const;
  std::unique_ptr<StickyBit> Sticky(BaseRegisterClient& client,
                                    const std::string& name,
                                    ProcessId self) const;

 private:
  FarmConfig farm_;
  std::map<std::string, std::uint32_t> ids_;
};

}  // namespace nadreg::core
