#include "core/register_set.h"

#include <cassert>

namespace nadreg::core {

struct RegisterSet::Ticket::State {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::size_t completed = 0;
  // One slot per register index; set when that register's op completes.
  std::vector<std::optional<Value>> results;

  explicit State(std::size_t n) : results(n) {}
};

std::size_t RegisterSet::Ticket::Completed() const {
  std::lock_guard lock(state_->mu);
  return state_->completed;
}

std::vector<std::pair<std::size_t, Value>> RegisterSet::Ticket::Results()
    const {
  std::lock_guard lock(state_->mu);
  std::vector<std::pair<std::size_t, Value>> out;
  out.reserve(state_->completed);
  for (std::size_t i = 0; i < state_->results.size(); ++i) {
    if (state_->results[i]) out.emplace_back(i, *state_->results[i]);
  }
  return out;
}

struct RegisterSet::Shared : std::enable_shared_from_this<RegisterSet::Shared> {
  struct QueuedOp {
    bool is_write = false;
    Value value;  // writes only
    // Tickets to notify on completion. Reads may have several (coalesced).
    std::vector<std::shared_ptr<Ticket::State>> subscribers;
  };
  struct Slot {
    bool busy = false;
    std::deque<QueuedOp> queue;
  };

  BaseRegisterClient* client = nullptr;
  ProcessId self = kNoProcess;
  std::vector<RegisterId> regs;
  std::mutex mu;
  std::vector<Slot> slots;

  void StartOrQueue(std::size_t i, QueuedOp op) {
    {
      std::lock_guard lock(mu);
      Slot& slot = slots[i];
      if (slot.busy) {
        // Coalesce a fresh read with a queued (unissued) read: a read that
        // has not been issued yet is as fresh as a new one.
        if (!op.is_write && !slot.queue.empty() &&
            !slot.queue.back().is_write) {
          auto& back = slot.queue.back().subscribers;
          back.insert(back.end(), op.subscribers.begin(),
                      op.subscribers.end());
        } else {
          slot.queue.push_back(std::move(op));
        }
        return;
      }
      slot.busy = true;
    }
    IssueOp(i, std::move(op));
  }

  void IssueOp(std::size_t i, QueuedOp op) {
    auto self_ptr = shared_from_this();
    if (op.is_write) {
      auto subs = std::move(op.subscribers);
      client->IssueWrite(self, regs[i], std::move(op.value),
                         [self_ptr, i, subs = std::move(subs)]() {
                           self_ptr->OnComplete(i, subs, std::nullopt);
                         });
    } else {
      auto subs = std::move(op.subscribers);
      client->IssueRead(self, regs[i],
                        [self_ptr, i, subs = std::move(subs)](Value v) {
                          self_ptr->OnComplete(i, subs, std::move(v));
                        });
    }
  }

  void OnComplete(std::size_t i,
                  const std::vector<std::shared_ptr<Ticket::State>>& subs,
                  std::optional<Value> read_value) {
    for (const auto& t : subs) {
      {
        std::lock_guard lock(t->mu);
        if (!t->results[i]) {
          t->results[i] = read_value ? *read_value : Value{};
          ++t->completed;
        }
      }
      t->cv.notify_all();
    }
    // Chain the next queued operation on this register, if any.
    QueuedOp next;
    bool have_next = false;
    {
      std::lock_guard lock(mu);
      Slot& slot = slots[i];
      if (slot.queue.empty()) {
        slot.busy = false;
      } else {
        next = std::move(slot.queue.front());
        slot.queue.pop_front();
        have_next = true;
      }
    }
    if (have_next) IssueOp(i, std::move(next));
  }
};

RegisterSet::RegisterSet(BaseRegisterClient& client, ProcessId self,
                         std::vector<RegisterId> regs)
    : shared_(std::make_shared<Shared>()) {
  assert(!regs.empty());
  shared_->client = &client;
  shared_->self = self;
  shared_->regs = std::move(regs);
  shared_->slots.resize(shared_->regs.size());
}

std::size_t RegisterSet::size() const { return shared_->regs.size(); }
ProcessId RegisterSet::self() const { return shared_->self; }
const std::vector<RegisterId>& RegisterSet::registers() const {
  return shared_->regs;
}

RegisterSet::Ticket RegisterSet::WriteAll(const Value& v) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>(shared_->regs.size());
  for (std::size_t i = 0; i < shared_->regs.size(); ++i) {
    Shared::QueuedOp op;
    op.is_write = true;
    op.value = v;
    op.subscribers = {ticket.state_};
    shared_->StartOrQueue(i, std::move(op));
  }
  return ticket;
}

RegisterSet::Ticket RegisterSet::ReadAll() {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>(shared_->regs.size());
  for (std::size_t i = 0; i < shared_->regs.size(); ++i) {
    Shared::QueuedOp op;
    op.is_write = false;
    op.subscribers = {ticket.state_};
    shared_->StartOrQueue(i, std::move(op));
  }
  return ticket;
}

bool RegisterSet::Await(const Ticket& ticket, std::size_t k,
                        std::optional<std::chrono::milliseconds> timeout) {
  auto& st = *ticket.state_;
  std::unique_lock lock(st.mu);
  auto ready = [&] { return st.completed >= k; };
  if (timeout) {
    return st.cv.wait_for(lock, *timeout, ready);
  }
  st.cv.wait(lock, ready);
  return true;
}

}  // namespace nadreg::core
