#include "core/register_set.h"

#include <atomic>
#include <cassert>

#include "common/quorum_wait.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace nadreg::core {

struct RegisterSet::Ticket::State {
  mutable Mutex mu;
  CondVar cv;
  std::size_t completed GUARDED_BY(mu) = 0;
  // One slot per register index; set when that register's op completes.
  std::vector<std::optional<Value>> results GUARDED_BY(mu);

  explicit State(std::size_t n) : results(n) {}
};

std::size_t RegisterSet::Ticket::Completed() const {
  MutexLock lock(state_->mu);
  return state_->completed;
}

std::vector<std::pair<std::size_t, Value>> RegisterSet::Ticket::Results()
    const {
  MutexLock lock(state_->mu);
  std::vector<std::pair<std::size_t, Value>> out;
  out.reserve(state_->completed);
  for (std::size_t i = 0; i < state_->results.size(); ++i) {
    if (state_->results[i]) out.emplace_back(i, *state_->results[i]);
  }
  return out;
}

struct RegisterSet::Shared : std::enable_shared_from_this<RegisterSet::Shared> {
  struct QueuedOp {
    bool is_write = false;
    bool is_merge = false;  // implies is_write; value holds the delta
    Value value;            // writes and merges only
    // Tickets to notify on completion. Reads may have several (coalesced).
    std::vector<std::shared_ptr<Ticket::State>> subscribers;
  };
  struct Slot {
    bool busy = false;
    std::deque<QueuedOp> queue;
  };

  // Filled in by RegisterSet's ctor before the Shared ptr is handed to
  // any completion handler; read-only from then on.
  // lint-allow(tsa-coverage): set pre-publication
  BaseRegisterClient* client = nullptr;
  // lint-allow(tsa-coverage): set pre-publication
  ProcessId self = kNoProcess;
  // lint-allow(tsa-coverage): set pre-publication
  std::vector<RegisterId> regs;
  Mutex mu;
  std::vector<Slot> slots GUARDED_BY(mu);

  // Quorum/pending accounting. Atomics: bumped from Await (no mu) and
  // from the queue paths (under mu) alike.
  std::atomic<std::uint64_t> quorum_waits{0};
  std::atomic<std::uint64_t> quorum_wait_us{0};
  std::atomic<std::uint64_t> pending_queued{0};
  std::atomic<std::uint64_t> max_pending_depth{0};

  // Process-global instruments (resolved once; recording is lock-free).
  // lint-allow(tsa-coverage): resolved once at init
  obs::Histogram* g_wait_hist =
      &obs::Registry::Global().GetHistogram("core.quorum_wait_us");
  // lint-allow(tsa-coverage): resolved once at init
  obs::Gauge* g_pending_depth =
      &obs::Registry::Global().GetGauge("core.pending_depth");
  // lint-allow(tsa-coverage): resolved once at init
  obs::Counter* g_skipped_suspected =
      &obs::Registry::Global().GetCounter("core.skipped_suspected");

  void NoteQueued(std::size_t depth_now) {
    pending_queued.fetch_add(1, std::memory_order_relaxed);
    g_pending_depth->Add(1);
    std::uint64_t seen = max_pending_depth.load(std::memory_order_relaxed);
    while (depth_now > seen && !max_pending_depth.compare_exchange_weak(
                                   seen, depth_now, std::memory_order_relaxed)) {
    }
  }

  // Issues one whole phase (a read or write of every register) with the
  // paper's pending-write discipline per register. All registers whose
  // slot is free are handed to the client in ONE vectored call, so a
  // networked backend coalesces the phase into one batch frame per disk;
  // busy slots queue (reads coalescing) and chain from OnComplete.
  void IssuePhase(const std::shared_ptr<Ticket::State>& st, bool is_write,
                  const Value& v) {
    std::vector<std::size_t> to_issue;
    to_issue.reserve(regs.size());
    {
      MutexLock lock(mu);
      for (std::size_t i = 0; i < regs.size(); ++i) {
        Slot& slot = slots[i];
        if (!slot.busy) {
          if (client->IsSuspectedCrashed(regs[i].disk)) {
            // Fail fast on a transport-reported crash (open circuit
            // breaker): issuing would only park the op until expiry, and
            // never issuing gives identical crashed-register semantics —
            // this ticket index simply never completes. The slot stays
            // free, so a later phase probes again once the breaker
            // half-opens and the suspicion clears.
            g_skipped_suspected->Inc();
            continue;
          }
          slot.busy = true;
          to_issue.push_back(i);
          continue;
        }
        // Coalesce a fresh read with a queued (unissued) read: a read that
        // has not been issued yet is as fresh as a new one.
        if (!is_write && !slot.queue.empty() && !slot.queue.back().is_write) {
          slot.queue.back().subscribers.push_back(st);
        } else {
          QueuedOp op;
          op.is_write = is_write;
          if (is_write) op.value = v;
          op.subscribers = {st};
          slot.queue.push_back(std::move(op));
          NoteQueued(slot.queue.size());
        }
      }
    }
    if (to_issue.empty()) return;
    auto self_ptr = shared_from_this();
    if (is_write) {
      std::vector<BaseRegisterClient::WriteOp> ops;
      ops.reserve(to_issue.size());
      for (std::size_t i : to_issue) {
        ops.push_back({regs[i], v, [self_ptr, i, st] {
                         self_ptr->OnComplete(i, {st}, std::nullopt);
                       }});
      }
      client->IssueWrites(self, std::move(ops));
    } else {
      std::vector<BaseRegisterClient::ReadOp> ops;
      ops.reserve(to_issue.size());
      for (std::size_t i : to_issue) {
        ops.push_back({regs[i], [self_ptr, i, st](Value value) {
                         self_ptr->OnComplete(i, {st}, std::move(value));
                       }});
      }
      client->IssueReads(self, std::move(ops));
    }
  }

  // The coded write phase's fan-out: like a write phase, but register i
  // receives its own delta (fragment i), and queued merges never coalesce
  // — every delta must take effect for the cell join to converge.
  void IssueMergePhase(const std::shared_ptr<Ticket::State>& st,
                       std::vector<Value> deltas) {
    std::vector<std::size_t> to_issue;
    to_issue.reserve(regs.size());
    {
      MutexLock lock(mu);
      for (std::size_t i = 0; i < regs.size(); ++i) {
        Slot& slot = slots[i];
        if (!slot.busy) {
          if (client->IsSuspectedCrashed(regs[i].disk)) {
            // Same fail-fast as IssuePhase: see the comment there.
            g_skipped_suspected->Inc();
            continue;
          }
          slot.busy = true;
          to_issue.push_back(i);
          continue;
        }
        QueuedOp op;
        op.is_write = true;
        op.is_merge = true;
        op.value = std::move(deltas[i]);
        op.subscribers = {st};
        slot.queue.push_back(std::move(op));
        NoteQueued(slot.queue.size());
      }
    }
    if (to_issue.empty()) return;
    auto self_ptr = shared_from_this();
    std::vector<BaseRegisterClient::WriteOp> ops;
    ops.reserve(to_issue.size());
    for (std::size_t i : to_issue) {
      ops.push_back({regs[i], std::move(deltas[i]), [self_ptr, i, st] {
                       self_ptr->OnComplete(i, {st}, std::nullopt);
                     }});
    }
    client->IssueMerges(self, std::move(ops));
  }

  void IssueOp(std::size_t i, QueuedOp op) {
    auto self_ptr = shared_from_this();
    if (op.is_merge) {
      auto subs = std::move(op.subscribers);
      client->IssueMerge(self, regs[i], std::move(op.value),
                         [self_ptr, i, subs = std::move(subs)]() {
                           self_ptr->OnComplete(i, subs, std::nullopt);
                         });
    } else if (op.is_write) {
      auto subs = std::move(op.subscribers);
      client->IssueWrite(self, regs[i], std::move(op.value),
                         [self_ptr, i, subs = std::move(subs)]() {
                           self_ptr->OnComplete(i, subs, std::nullopt);
                         });
    } else {
      auto subs = std::move(op.subscribers);
      client->IssueRead(self, regs[i],
                        [self_ptr, i, subs = std::move(subs)](Value v) {
                          self_ptr->OnComplete(i, subs, std::move(v));
                        });
    }
  }

  void OnComplete(std::size_t i,
                  const std::vector<std::shared_ptr<Ticket::State>>& subs,
                  std::optional<Value> read_value) {
    for (const auto& t : subs) {
      {
        MutexLock lock(t->mu);
        if (!t->results[i]) {
          t->results[i] = read_value ? *read_value : Value{};
          ++t->completed;
        }
      }
      t->cv.NotifyAll();
    }
    // Tell a deterministic scheduler a completion for this process ran
    // (quiescence accounting; no-op on real backends). After the
    // notifies, before chaining — the chained issue re-enters the client.
    client->NoteCompletion(self);
    // Chain the next queued operation on this register, if any.
    QueuedOp next;
    bool have_next = false;
    {
      MutexLock lock(mu);
      Slot& slot = slots[i];
      if (slot.queue.empty()) {
        slot.busy = false;
      } else {
        next = std::move(slot.queue.front());
        slot.queue.pop_front();
        g_pending_depth->Add(-1);
        have_next = true;
      }
    }
    if (have_next) IssueOp(i, std::move(next));
  }
};

RegisterSet::RegisterSet(BaseRegisterClient& client, ProcessId self,
                         std::vector<RegisterId> regs)
    : shared_(std::make_shared<Shared>()) {
  assert(!regs.empty());
  shared_->client = &client;
  shared_->self = self;
  shared_->regs = std::move(regs);
  shared_->slots.resize(shared_->regs.size());
}

std::size_t RegisterSet::size() const { return shared_->regs.size(); }
ProcessId RegisterSet::self() const { return shared_->self; }
const std::vector<RegisterId>& RegisterSet::registers() const {
  return shared_->regs;
}

RegisterSet::Ticket RegisterSet::WriteAll(const Value& v) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>(shared_->regs.size());
  shared_->IssuePhase(ticket.state_, /*is_write=*/true, v);
  return ticket;
}

RegisterSet::Ticket RegisterSet::ReadAll() {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>(shared_->regs.size());
  shared_->IssuePhase(ticket.state_, /*is_write=*/false, Value{});
  return ticket;
}

RegisterSet::Ticket RegisterSet::MergeEach(std::vector<Value> deltas) {
  assert(deltas.size() == shared_->regs.size());
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>(shared_->regs.size());
  shared_->IssueMergePhase(ticket.state_, std::move(deltas));
  return ticket;
}

bool RegisterSet::Await(const Ticket& ticket, std::size_t k,
                        std::optional<std::chrono::milliseconds> timeout) {
  OpDeadline deadline;
  if (timeout) deadline = std::chrono::steady_clock::now() + *timeout;
  return AwaitUntil(ticket, k, deadline);
}

bool RegisterSet::AwaitUntil(const Ticket& ticket, std::size_t k,
                             OpDeadline deadline) {
  auto st = ticket.state_;
  const auto wait_start = std::chrono::steady_clock::now();
  bool ok;
  {
    // The wake closure owns the ticket state: a deterministic scheduler
    // may fire it after this frame returned.
    std::function<void()> wake = [st] {
      MutexLock lock(st->mu);
      st->cv.NotifyAll();
    };
    MutexLock lock(st->mu);
    ok = BlockedQuorumWait(
        *shared_->client, shared_->self, st->mu, st->cv, wake, deadline,
        [&] {
          st->mu.AssertHeld();  // predicates run under the lock
          return st->completed < k ? k - st->completed : std::size_t{0};
        },
        [&] {
          st->mu.AssertHeld();
          return st->completed >= k;
        });
  }
  const auto waited = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  shared_->quorum_waits.fetch_add(1, std::memory_order_relaxed);
  shared_->quorum_wait_us.fetch_add(waited, std::memory_order_relaxed);
  shared_->g_wait_hist->Observe(waited);
  return ok;
}

obs::PhaseCounters RegisterSet::op_metrics() const {
  obs::PhaseCounters out;
  out.quorum_waits = shared_->quorum_waits.load(std::memory_order_relaxed);
  out.quorum_wait_us = shared_->quorum_wait_us.load(std::memory_order_relaxed);
  out.pending_queued = shared_->pending_queued.load(std::memory_order_relaxed);
  out.max_pending_depth =
      shared_->max_pending_depth.load(std::memory_order_relaxed);
  return out;
}

}  // namespace nadreg::core
