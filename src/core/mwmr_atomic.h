/// \file
/// Uniform wait-free atomic MWMR register from infinitely many fail-prone
/// base registers spread over 2t+1 disks (Section 6, Figure 3) — Table 4.
///
///   WRITE(val) under fresh name n:
///     S := name_snapshot(n)
///     v[n] := (val, S)                      (one-shot register)
///
///   READ under fresh name n:
///     S := name_snapshot(n)
///     T := { m ∈ S : v[m] non-empty }
///     if T = ∅: return the initial value
///     m* := the m ∈ T whose stored snapshot v[m].snapshot is largest in
///           inclusion order (Total Ordering makes them comparable; ties —
///           identical snapshots — are broken by larger name, a fixed
///           deterministic rule as the paper allows)
///     return v[m*].value
///
/// Each name may WRITE at most once (Fig. 3); the multi-WRITE interface
/// below applies the paper's transformation: every process reserves
/// infinitely many names — here (pid, 0), (pid, 1), … — and each new READ
/// or WRITE uses a fresh one.
///
/// The linearization-point assignment of Theorem 4 (and thus atomicity)
/// depends only on the snapshot's Validity / Total Ordering / Integrity and
/// on one-shot register atomicity; tests/test_mwmr_atomic.cc checks the
/// emulated register's histories with the linearizability checker under
/// full-disk-crash injection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/codec.h"
#include "common/op_options.h"
#include "common/status.h"
#include "core/address.h"
#include "core/config.h"
#include "core/name_snapshot.h"
#include "core/oneshot.h"
#include "obs/instrumented.h"

namespace nadreg::core {

class MwmrAtomic : public obs::Instrumented {
 public:
  /// One endpoint per process. `object` scopes the on-disk address space;
  /// endpoints of the same emulated register share the same `object` (and
  /// the same `layout` — it is part of the on-disk format). The default
  /// layout is the full deployment namespace; bounded model checking
  /// passes a small one so each announce/collect touches a handful of
  /// sticky bits instead of 48 (see core/address.h).
  MwmrAtomic(BaseRegisterClient& client, const FarmConfig& farm,
             std::uint32_t object, ProcessId self, NameLayout layout = {});

  // --- Figure 3 primitive interface (one operation per name) -------------

  /// WRITE(val) under `name`. The name must be fresh system-wide.
  void WriteAs(const Name& name, const std::string& value);

  /// READ under `name`. nullopt = initial value (no WRITE visible).
  std::optional<std::string> ReadAs(const Name& name);

  // --- Multi-WRITE interface (fresh names drawn automatically) -----------

  /// WRITE(val). Uses the next reserved name of this process.
  void Write(const std::string& value);

  /// READ. nullopt = initial value.
  std::optional<std::string> Read();

  // --- Unified API (deadline + trace label; see common/op_options.h) ------

  /// kTimeout = abandoned past the deadline. The fresh name is consumed
  /// either way (it may have been announced); the WRITE's value is only
  /// visible if the final one-shot write reached a quorum — an abandoned
  /// op looks to everyone else like a slow concurrent one, which the
  /// model already admits.
  Status Write(const std::string& value, const OpOptions& opts);
  Expected<std::optional<std::string>> Read(const OpOptions& opts);

  /// Collects every WRITE record visible to a fresh snapshot, with the
  /// snapshot each WRITE stored (used by apps::SharedLog to derive a
  /// total order over all writes rather than just the latest).
  std::vector<std::pair<Name, SnapRecord>> CollectAll();

  /// Snapshot-layer statistics (collect passes, adoptions, sticky traffic).
  const NameSnapshot::Stats& snapshot_stats() const { return snap_.stats(); }

  /// Unified phase counters: snapshot-layer traffic plus this endpoint's
  /// completed READs/WRITEs and deadline timeouts.
  obs::PhaseCounters op_metrics() const override;

 private:
  OneShotRegister& ValueReg(const Name& n);
  const SnapRecord* ReadValue(const Name& n);
  Expected<const SnapRecord*> ReadValueUntil(const Name& n,
                                             OpDeadline deadline);
  Status WriteAsUntil(const Name& name, const std::string& value,
                      OpDeadline deadline);
  Expected<std::optional<std::string>> ReadAsUntil(const Name& name,
                                                   OpDeadline deadline);
  Name FreshName();

  BaseRegisterClient& client_;
  FarmConfig farm_;
  std::uint32_t object_;
  ProcessId self_;
  NameLayout layout_;
  NameSnapshot snap_;
  std::uint64_t next_index_ = 0;
  std::map<Name, std::unique_ptr<OneShotRegister>> value_regs_;
  // v[m] records are immutable once written; cache decoded ones.
  std::map<Name, SnapRecord> known_values_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace nadreg::core
