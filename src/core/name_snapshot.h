/// \file
/// Name snapshot for the infinite-arrival model (Section 6, after Gafni,
/// Merritt & Taubenfeld, PODC 2001).
///
/// At any time a process may start a snapshot under a fresh name n; when it
/// terminates it outputs a set of names S_n such that:
///
///   * Validity:       n ∈ S_n.
///   * Total Ordering: all output snapshots form an inclusion chain.
///   * Integrity:      if m does not start by the time n's snapshot
///                     terminates, then m ∉ S_n.
///
/// Construction (uses exactly the register types Section 6 shows to be
/// fault-tolerantly implementable — sticky bits and one-shot registers,
/// spread over the 2t+1 disks):
///
///   * Name directory: an unbounded binary trie of sticky bits. A name
///     announces itself by setting the 48 sticky bits along its packed
///     name's root-to-leaf path — concurrently, in one quorum round trip:
///     a partially announced name is never collectable because "the whole
///     path is visible" is monotone and first holds when the last path bit
///     lands, and the leaf bit is name-specific. A collect walks the
///     marked trie (level-pipelined by default); it gathers every fully
///     announced name and, because the directory is grow-only and its bits
///     are atomic, two equal consecutive collects pin the exact directory
///     contents at a single instant.
///   * view[n]: a one-shot register owned by name n, holding the snapshot
///     set n committed (published before n returns).
///
///   Snapshot(n):
///     announce(n)
///     V1 := collect()
///     loop:
///       V2 := collect()
///       if V2 == V1:  view[n] := V1; return V1            (clean pin)
///       else: for m in V2, if view[m] is written and n ∈ view[m]:
///                 return view[m]                           (adoption)
///             V1 := V2
///
/// Every returned set is the directory's exact contents at some instant no
/// later than the operation's own termination, which yields all three
/// properties (see tests/test_name_snapshot.cc for the property suite).
///
/// Faithfulness note (also in DESIGN.md §7): the paper defers to [28] for a
/// snapshot that is wait-free even under unbounded concurrency. Ours is
/// wait-free whenever new arrivals stop interfering for one double-collect
/// (in particular in every finite-arrival run) and lock-free in general:
/// interference means ever-new names announce, and any of them that pins a
/// clean collect publishes a view that all concurrent operations adopt.
/// All three *safety* properties — the only ones the Fig. 3 atomicity
/// proof uses — hold unconditionally.
///
/// Observability: each collect pass is timed and traced ("snap.collect_us"
/// in the global obs registry; spans "snap/collect"), and the per-endpoint
/// Stats counters are surfaced through the unified Instrumented accessor.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/op_options.h"
#include "common/status.h"
#include "common/types.h"
#include "core/address.h"
#include "core/config.h"
#include "core/oneshot.h"
#include "obs/instrumented.h"

namespace nadreg::core {

class NameSnapshot : public obs::Instrumented {
 public:
  struct Stats {
    std::uint64_t collects = 0;       // total collect passes
    std::uint64_t adoptions = 0;      // snapshots resolved by adoption
    std::uint64_t sticky_reads = 0;   // sticky bits actually read
    std::uint64_t sticky_sets = 0;    // sticky bits actually set
  };

  /// One instance per process. `object` scopes the directory's on-disk
  /// address space so independent snapshot objects do not collide.
  /// `pipelined_collect` batches each trie level's sticky reads into
  /// concurrently outstanding quorum reads (latency O(depth) round trips
  /// instead of O(marked nodes)); the sequential mode is kept for the
  /// ablation bench. Both modes read the same bits in parent-before-child
  /// order, so the double-collect pin argument is unchanged. `layout`
  /// bounds the name universe (trie depth = layout.name_bits); the default
  /// is the full deployment layout — smaller layouts are for bounded model
  /// checking (see core/address.h).
  NameSnapshot(BaseRegisterClient& client, const FarmConfig& farm,
               std::uint32_t object, ProcessId self,
               bool pipelined_collect = true, NameLayout layout = {});

  /// Runs the snapshot protocol for `name`. The caller must own `name`
  /// (first field = its ProcessId discipline is the caller's) and use it
  /// for at most one Snapshot call, ever, across the whole system.
  std::vector<Name> Snapshot(const Name& name);

  /// Deadline-aware Snapshot (kTimeout = abandoned past `deadline`; the
  /// name stays announced but publishes no view — safe, it just looks
  /// like a slow concurrent operation to everyone else).
  Expected<std::vector<Name>> SnapshotUntil(const Name& name,
                                            OpDeadline deadline);

  /// Announce without snapshotting (exposed for tests/benches).
  void Announce(const Name& name);
  /// One collect pass (exposed for tests/benches).
  std::vector<Name> Collect();

  const Stats& stats() const { return stats_; }

  obs::PhaseCounters op_metrics() const override;

 private:
  StickyBit& Mark(std::uint64_t trie_node);
  OneShotRegister& View(const Name& n);
  Expected<bool> MarkIsSet(std::uint64_t trie_node, OpDeadline deadline);
  Status AnnounceUntil(const Name& name, OpDeadline deadline);
  Expected<std::vector<Name>> CollectUntil(OpDeadline deadline);
  Expected<std::vector<Name>> CollectSequential(OpDeadline deadline);
  Expected<std::vector<Name>> CollectPipelined(OpDeadline deadline);

  BaseRegisterClient& client_;
  FarmConfig farm_;
  std::uint32_t object_;
  ProcessId self_;
  bool pipelined_collect_;
  NameLayout layout_;
  Stats stats_;

  // Sticky bits and views are immutable once observed; keep instances (and
  // thus their caches) for the lifetime of this endpoint.
  std::map<std::uint64_t, std::unique_ptr<StickyBit>> marks_;
  std::map<Name, std::unique_ptr<OneShotRegister>> views_;
  // Committed views already decoded (immutable once written).
  std::map<Name, std::vector<Name>> known_views_;

  Expected<const std::vector<Name>*> ReadView(const Name& m,
                                              OpDeadline deadline);
};

}  // namespace nadreg::core
