#include "core/name_snapshot.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nadreg::core {

namespace {
obs::Histogram& CollectHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("snap.collect_us");
  return h;
}
obs::Histogram& SnapshotHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("snap.snapshot_us");
  return h;
}
obs::Counter& AdoptionCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("snap.adoptions");
  return c;
}
}  // namespace

NameSnapshot::NameSnapshot(BaseRegisterClient& client, const FarmConfig& farm,
                           std::uint32_t object, ProcessId self,
                           bool pipelined_collect, NameLayout layout)
    : client_(client),
      farm_(farm),
      object_(object),
      self_(self),
      pipelined_collect_(pipelined_collect),
      layout_(layout) {}

StickyBit& NameSnapshot::Mark(std::uint64_t trie_node) {
  auto it = marks_.find(trie_node);
  if (it == marks_.end()) {
    auto bit = std::make_unique<StickyBit>(
        client_, farm_,
        farm_.Spread(MakeBlock(object_, Component::kTrieMark, trie_node)),
        self_);
    it = marks_.emplace(trie_node, std::move(bit)).first;
  }
  return *it->second;
}

OneShotRegister& NameSnapshot::View(const Name& n) {
  auto it = views_.find(n);
  if (it == views_.end()) {
    auto reg = std::make_unique<OneShotRegister>(
        client_, farm_,
        farm_.Spread(MakeBlock(object_, Component::kView, layout_.Pack(n))),
        self_);
    it = views_.emplace(n, std::move(reg)).first;
  }
  return *it->second;
}

Expected<bool> NameSnapshot::MarkIsSet(std::uint64_t trie_node,
                                       OpDeadline deadline) {
  StickyBit& bit = Mark(trie_node);
  if (bit.KnownSet()) return true;  // sticky: stays set forever
  ++stats_.sticky_reads;
  return bit.IsSetUntil(deadline);
}

void NameSnapshot::Announce(const Name& name) {
  Status s = AnnounceUntil(name, std::nullopt);
  assert(s.ok());
  (void)s;
}

Status NameSnapshot::AnnounceUntil(const Name& name, OpDeadline deadline) {
  // All path bits are set CONCURRENTLY (one quorum round trip instead of
  // one per level). Safe because "the whole path is visible" — the
  // predicate collects test — is monotone and first becomes true at the
  // linearization point of whichever path bit lands last: no partial
  // announce can ever be collected, regardless of set order. (The leaf
  // node is name-specific, so sibling names' bits can never complete a
  // path whose leaf was not set by this name's own announce.)
  const std::uint64_t packed = layout_.Pack(name);
  std::uint64_t node = TrieRoot();
  std::vector<std::pair<StickyBit*, StickyBit::InFlightWrite>> in_flight;
  in_flight.reserve(layout_.name_bits);
  for (int d = 0; d < layout_.name_bits; ++d) {
    node = TrieChild(node, (packed >> (layout_.name_bits - 1 - d)) & 1);
    StickyBit& bit = Mark(node);
    if (!bit.KnownSet()) {
      ++stats_.sticky_sets;
      in_flight.emplace_back(&bit, bit.BeginSet());
    }
  }
  Status result = Status::Ok();
  for (auto& [bit, write] : in_flight) {
    // Drain every in-flight set even after a timeout: the writes are
    // already issued and finishing the survivors costs no extra rounds.
    if (Status s = bit->FinishSetUntil(write, deadline); !s.ok()) result = s;
  }
  return result;
}

std::vector<Name> NameSnapshot::Collect() {
  auto v = CollectUntil(std::nullopt);
  assert(v.ok());
  return std::move(*v);
}

Expected<std::vector<Name>> NameSnapshot::CollectUntil(OpDeadline deadline) {
  ++stats_.collects;
  obs::ScopedPhase phase(&CollectHist(), "snap", "collect");
  return pipelined_collect_ ? CollectPipelined(deadline)
                            : CollectSequential(deadline);
}

Expected<std::vector<Name>> NameSnapshot::CollectSequential(
    OpDeadline deadline) {
  std::vector<Name> out;
  std::vector<std::pair<std::uint64_t, int>> stack;  // (trie node, depth)
  stack.emplace_back(TrieRoot(), 0);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (depth == layout_.name_bits) {
      out.push_back(layout_.Unpack(node - (1ULL << layout_.name_bits)));
      continue;
    }
    for (unsigned bit : {0u, 1u}) {
      const std::uint64_t child = TrieChild(node, bit);
      auto set = MarkIsSet(child, deadline);
      if (!set.ok()) return set.status();
      if (*set) stack.emplace_back(child, depth + 1);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Expected<std::vector<Name>> NameSnapshot::CollectPipelined(
    OpDeadline deadline) {
  // Level-order walk with a whole level's sticky reads outstanding at
  // once: O(depth) quorum round trips instead of one per marked node.
  std::vector<std::uint64_t> frontier{TrieRoot()};
  for (int depth = 0; depth < layout_.name_bits && !frontier.empty(); ++depth) {
    struct Probe {
      std::uint64_t node;
      StickyBit* bit;
      StickyBit::InFlightRead inflight;
      bool known = false;
    };
    std::vector<Probe> probes;
    probes.reserve(frontier.size() * 2);
    std::vector<std::uint64_t> next;
    for (std::uint64_t node : frontier) {
      for (unsigned b : {0u, 1u}) {
        const std::uint64_t child = TrieChild(node, b);
        StickyBit& bit = Mark(child);
        if (bit.KnownSet()) {
          next.push_back(child);  // sticky: cached truth is forever
        } else {
          ++stats_.sticky_reads;
          probes.push_back(Probe{child, &bit, bit.BeginIsSet(), false});
        }
      }
    }
    Status failed = Status::Ok();
    for (Probe& probe : probes) {
      auto set = probe.bit->FinishIsSetUntil(probe.inflight, deadline);
      if (!set.ok()) {
        // Keep draining the remaining probes (their quorum reads are
        // already in flight) but remember the timeout.
        failed = set.status();
        continue;
      }
      if (*set) next.push_back(probe.node);
    }
    if (!failed.ok()) return failed;
    frontier = std::move(next);
  }
  std::vector<Name> out;
  out.reserve(frontier.size());
  for (std::uint64_t leaf : frontier) {
    out.push_back(layout_.Unpack(leaf - (1ULL << layout_.name_bits)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Expected<const std::vector<Name>*> NameSnapshot::ReadView(
    const Name& m, OpDeadline deadline) {
  auto it = known_views_.find(m);
  if (it != known_views_.end()) {
    return const_cast<const std::vector<Name>*>(&it->second);
  }
  auto bytes = View(m).ReadUntil(deadline);
  if (!bytes.ok()) return bytes.status();
  if (!bytes->has_value()) {
    return static_cast<const std::vector<Name>*>(nullptr);
  }
  auto names = DecodeNameSet(**bytes);
  assert(names.ok() && "published view must decode");
  if (!names.ok()) return static_cast<const std::vector<Name>*>(nullptr);
  return const_cast<const std::vector<Name>*>(
      &known_views_.emplace(m, std::move(*names)).first->second);
}

std::vector<Name> NameSnapshot::Snapshot(const Name& name) {
  auto v = SnapshotUntil(name, std::nullopt);
  assert(v.ok());
  return std::move(*v);
}

Expected<std::vector<Name>> NameSnapshot::SnapshotUntil(const Name& name,
                                                        OpDeadline deadline) {
  obs::ScopedPhase op_phase(&SnapshotHist(), "snap", "snapshot");
  if (Status s = AnnounceUntil(name, deadline); !s.ok()) return s;
  auto v1 = CollectUntil(deadline);
  if (!v1.ok()) return v1.status();
  for (;;) {
    auto v2 = CollectUntil(deadline);
    if (!v2.ok()) return v2.status();
    if (*v2 == *v1) {
      // Clean pin: v1 is the directory's exact contents at the instant
      // between the two collects. Publish it for adopters, then return.
      Status s = View(name).WriteUntil(EncodeNameSet(*v1), deadline);
      if (!s.ok()) return s;
      return v1;
    }
    // Interference: some name announced between the collects. Any
    // concurrent operation that managed a clean pin after our announce has
    // published a view containing us — adopt it.
    for (const Name& m : *v2) {
      if (m == name) continue;
      auto view = ReadView(m, deadline);
      if (!view.ok()) return view.status();
      if (*view != nullptr &&
          std::binary_search((*view)->begin(), (*view)->end(), name)) {
        ++stats_.adoptions;
        AdoptionCounter().Inc();
        return **view;
      }
    }
    v1 = std::move(v2);
  }
}

obs::PhaseCounters NameSnapshot::op_metrics() const {
  obs::PhaseCounters out;
  out.collects = stats_.collects;
  out.adoptions = stats_.adoptions;
  out.sticky_reads = stats_.sticky_reads;
  out.sticky_sets = stats_.sticky_sets;
  return out;
}

}  // namespace nadreg::core
