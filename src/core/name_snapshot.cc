#include "core/name_snapshot.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/codec.h"

namespace nadreg::core {

namespace {
constexpr int kNameBits = 48;  // PackName width; trie depth
}  // namespace

NameSnapshot::NameSnapshot(BaseRegisterClient& client, const FarmConfig& farm,
                           std::uint32_t object, ProcessId self,
                           bool pipelined_collect)
    : client_(client),
      farm_(farm),
      object_(object),
      self_(self),
      pipelined_collect_(pipelined_collect) {}

StickyBit& NameSnapshot::Mark(std::uint64_t trie_node) {
  auto it = marks_.find(trie_node);
  if (it == marks_.end()) {
    auto bit = std::make_unique<StickyBit>(
        client_, farm_,
        farm_.Spread(MakeBlock(object_, Component::kTrieMark, trie_node)),
        self_);
    it = marks_.emplace(trie_node, std::move(bit)).first;
  }
  return *it->second;
}

OneShotRegister& NameSnapshot::View(const Name& n) {
  auto it = views_.find(n);
  if (it == views_.end()) {
    auto reg = std::make_unique<OneShotRegister>(
        client_, farm_,
        farm_.Spread(MakeBlock(object_, Component::kView, PackName(n))),
        self_);
    it = views_.emplace(n, std::move(reg)).first;
  }
  return *it->second;
}

bool NameSnapshot::MarkIsSet(std::uint64_t trie_node) {
  StickyBit& bit = Mark(trie_node);
  if (bit.KnownSet()) return true;  // sticky: stays set forever
  ++stats_.sticky_reads;
  return bit.IsSet();
}

void NameSnapshot::Announce(const Name& name) {
  // All path bits are set CONCURRENTLY (one quorum round trip instead of
  // one per level). Safe because "the whole path is visible" — the
  // predicate collects test — is monotone and first becomes true at the
  // linearization point of whichever path bit lands last: no partial
  // announce can ever be collected, regardless of set order. (The leaf
  // node is name-specific, so sibling names' bits can never complete a
  // path whose leaf was not set by this name's own announce.)
  const std::uint64_t packed = PackName(name);
  std::uint64_t node = TrieRoot();
  std::vector<std::pair<StickyBit*, StickyBit::InFlightWrite>> in_flight;
  in_flight.reserve(kNameBits);
  for (int d = 0; d < kNameBits; ++d) {
    node = TrieChild(node, (packed >> (kNameBits - 1 - d)) & 1);
    StickyBit& bit = Mark(node);
    if (!bit.KnownSet()) {
      ++stats_.sticky_sets;
      in_flight.emplace_back(&bit, bit.BeginSet());
    }
  }
  for (auto& [bit, write] : in_flight) bit->FinishSet(write);
}

std::vector<Name> NameSnapshot::Collect() {
  ++stats_.collects;
  return pipelined_collect_ ? CollectPipelined() : CollectSequential();
}

std::vector<Name> NameSnapshot::CollectSequential() {
  std::vector<Name> out;
  std::vector<std::pair<std::uint64_t, int>> stack;  // (trie node, depth)
  stack.emplace_back(TrieRoot(), 0);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (depth == kNameBits) {
      out.push_back(UnpackName(node - (1ULL << kNameBits)));
      continue;
    }
    for (unsigned bit : {0u, 1u}) {
      const std::uint64_t child = TrieChild(node, bit);
      if (MarkIsSet(child)) stack.emplace_back(child, depth + 1);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Name> NameSnapshot::CollectPipelined() {
  // Level-order walk with a whole level's sticky reads outstanding at
  // once: O(depth) quorum round trips instead of one per marked node.
  std::vector<std::uint64_t> frontier{TrieRoot()};
  for (int depth = 0; depth < kNameBits && !frontier.empty(); ++depth) {
    struct Probe {
      std::uint64_t node;
      StickyBit* bit;
      StickyBit::InFlightRead inflight;
      bool known = false;
    };
    std::vector<Probe> probes;
    probes.reserve(frontier.size() * 2);
    std::vector<std::uint64_t> next;
    for (std::uint64_t node : frontier) {
      for (unsigned b : {0u, 1u}) {
        const std::uint64_t child = TrieChild(node, b);
        StickyBit& bit = Mark(child);
        if (bit.KnownSet()) {
          next.push_back(child);  // sticky: cached truth is forever
        } else {
          ++stats_.sticky_reads;
          probes.push_back(Probe{child, &bit, bit.BeginIsSet(), false});
        }
      }
    }
    for (Probe& probe : probes) {
      if (probe.bit->FinishIsSet(probe.inflight)) next.push_back(probe.node);
    }
    frontier = std::move(next);
  }
  std::vector<Name> out;
  out.reserve(frontier.size());
  for (std::uint64_t leaf : frontier) {
    out.push_back(UnpackName(leaf - (1ULL << kNameBits)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<Name>* NameSnapshot::ReadView(const Name& m) {
  auto it = known_views_.find(m);
  if (it != known_views_.end()) return &it->second;
  auto bytes = View(m).Read();
  if (!bytes) return nullptr;
  auto names = DecodeNameSet(*bytes);
  assert(names.ok() && "published view must decode");
  if (!names.ok()) return nullptr;
  return &known_views_.emplace(m, std::move(*names)).first->second;
}

std::vector<Name> NameSnapshot::Snapshot(const Name& name) {
  Announce(name);
  std::vector<Name> v1 = Collect();
  for (;;) {
    std::vector<Name> v2 = Collect();
    if (v2 == v1) {
      // Clean pin: v1 is the directory's exact contents at the instant
      // between the two collects. Publish it for adopters, then return.
      Status s = View(name).Write(EncodeNameSet(v1));
      assert(s.ok() && "a name must be used for at most one Snapshot");
      (void)s;
      return v1;
    }
    // Interference: some name announced between the collects. Any
    // concurrent operation that managed a clean pin after our announce has
    // published a view containing us — adopt it.
    for (const Name& m : v2) {
      if (m == name) continue;
      const std::vector<Name>* view = ReadView(m);
      if (view != nullptr &&
          std::binary_search(view->begin(), view->end(), name)) {
        ++stats_.adoptions;
        return *view;
      }
    }
    v1 = std::move(v2);
  }
}

}  // namespace nadreg::core
