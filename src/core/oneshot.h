/// \file
/// Wait-free fault-tolerant one-shot registers and sticky bits (Section 6).
///
/// A *one-shot* register is a Single-Writer Multi-Reader register that may
/// be written only once; before that it holds its initial value. A *stable*
/// register relaxes single-writer to "many writers, but every write carries
/// the same value" — the paper's flag[] registers are the boolean case
/// (sticky bits). Both share one implementation over 2t+1 base registers
/// placed on distinct disks:
///
///   WRITE(v): write v to all 2t+1 base registers; wait for t+1.
///   READ():   read t+1 responses. If all carry the initial value, return
///             initial. Otherwise let v be the (unique) non-initial value
///             seen; write v back to the 2t+1 registers, wait for t+1, and
///             return v.
///
/// The reader write-back is what makes the register atomic: once a READ
/// returned v, v sits on a majority, so every later READ's quorum
/// intersects it and also returns v. Uniqueness of the non-initial value is
/// the caller's promise (single writer / single possible value) — without
/// it the construction is exactly the kind of multi-valued MWMR register
/// the paper proves unimplementable with finitely many base registers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/op_options.h"
#include "common/status.h"
#include "core/config.h"
#include "core/register_set.h"
#include "obs/instrumented.h"

namespace nadreg::core {

/// Shared implementation: a register whose every write, by any process,
/// carries one and the same value. One instance per accessing process.
class StableRegister : public obs::Instrumented {
 public:
  StableRegister(BaseRegisterClient& client, const FarmConfig& farm,
                 std::vector<RegisterId> regs, ProcessId self);

  /// Writes `v`. Caller's contract: every write to this register, by every
  /// process, passes an identical `v` (and `v` must be non-empty).
  void Write(const std::string& v);

  /// Reads. nullopt = initial value (no write is known to have completed).
  /// Wait-free: tolerates up to t crashed disks.
  std::optional<std::string> Read();

  /// Unified API: kTimeout = the deadline expired mid-protocol (the
  /// register state is unaffected; a timed-out READ publishes nothing).
  Status Write(const std::string& v, const OpOptions& opts);
  Expected<std::optional<std::string>> Read(const OpOptions& opts);

  /// True once this endpoint knows the value sits on a majority (after a
  /// successful Write or a non-initial Read). Lets callers skip redundant
  /// writes of stable state.
  bool Known() const { return known_.has_value(); }

  /// Split-phase read, allowing many stable registers to be read
  /// concurrently (the name snapshot pipelines a whole trie level this
  /// way). Begin issues the quorum reads; Finish blocks, applies the
  /// write-back rule and returns exactly what Read() would have.
  class InFlightRead {
   private:
    friend class StableRegister;
    RegisterSet::Ticket ticket_;
    bool cached_ = false;
  };
  InFlightRead BeginRead();
  std::optional<std::string> FinishRead(InFlightRead& read);
  /// Deadline-aware Finish (kTimeout = abandoned past `deadline`).
  Expected<std::optional<std::string>> FinishReadUntil(InFlightRead& read,
                                                       OpDeadline deadline);

  /// Split-phase write (same contract as Write): many stable registers
  /// can be written concurrently (the name snapshot announces all of a
  /// name's path bits in one round trip this way).
  class InFlightWrite {
   private:
    friend class StableRegister;
    RegisterSet::Ticket ticket_;
    bool cached_ = false;
    std::string value_;
  };
  InFlightWrite BeginWrite(const std::string& v);
  void FinishWrite(InFlightWrite& write);
  Status FinishWriteUntil(InFlightWrite& write, OpDeadline deadline);

  obs::PhaseCounters op_metrics() const override;

 private:
  RegisterSet set_;
  std::size_t quorum_;
  // A stable register can never change once observed: cache it.
  std::optional<std::string> known_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

/// One-shot SWMR register: a single owner may write once.
class OneShotRegister : public obs::Instrumented {
 public:
  OneShotRegister(BaseRegisterClient& client, const FarmConfig& farm,
                  std::vector<RegisterId> regs, ProcessId self);

  /// First write succeeds; later writes return kAlreadyWritten (local
  /// enforcement of the single-write contract; `v` must be non-empty —
  /// the empty string is the initial value).
  Status Write(const std::string& v);

  /// nullopt = initial value.
  std::optional<std::string> Read();

  /// Unified API (see StableRegister).
  Status Write(const std::string& v, const OpOptions& opts);
  Expected<std::optional<std::string>> Read(const OpOptions& opts);
  Status WriteUntil(const std::string& v, OpDeadline deadline);
  Expected<std::optional<std::string>> ReadUntil(OpDeadline deadline);

  obs::PhaseCounters op_metrics() const override { return inner_.op_metrics(); }

 private:
  StableRegister inner_;
  bool written_ = false;
};

/// Sticky bit: a boolean MWMR register that flips once from false to true
/// (all writes are "true" — trivially the same value).
class StickyBit : public obs::Instrumented {
 public:
  StickyBit(BaseRegisterClient& client, const FarmConfig& farm,
            std::vector<RegisterId> regs, ProcessId self);

  void Set();
  bool IsSet();
  /// Deadline-aware variants (kTimeout = abandoned past `deadline`).
  Status SetUntil(OpDeadline deadline);
  Expected<bool> IsSetUntil(OpDeadline deadline);
  /// True once this endpoint has majority-visible evidence the bit is set.
  bool KnownSet() const { return inner_.Known(); }

  /// Split-phase IsSet (see StableRegister::BeginRead/FinishRead).
  using InFlightRead = StableRegister::InFlightRead;
  InFlightRead BeginIsSet() { return inner_.BeginRead(); }
  bool FinishIsSet(InFlightRead& read) {
    return inner_.FinishRead(read).has_value();
  }
  Expected<bool> FinishIsSetUntil(InFlightRead& read, OpDeadline deadline) {
    auto v = inner_.FinishReadUntil(read, deadline);
    if (!v.ok()) return v.status();
    return v->has_value();
  }

  /// Split-phase Set (see StableRegister::BeginWrite/FinishWrite).
  using InFlightWrite = StableRegister::InFlightWrite;
  InFlightWrite BeginSet() { return inner_.BeginWrite("1"); }
  void FinishSet(InFlightWrite& write) { inner_.FinishWrite(write); }
  Status FinishSetUntil(InFlightWrite& write, OpDeadline deadline) {
    return inner_.FinishWriteUntil(write, deadline);
  }

  obs::PhaseCounters op_metrics() const override { return inner_.op_metrics(); }

 private:
  StableRegister inner_;
};

}  // namespace nadreg::core
