// Wait-free fault-tolerant one-shot registers and sticky bits (Section 6).
//
// A *one-shot* register is a Single-Writer Multi-Reader register that may
// be written only once; before that it holds its initial value. A *stable*
// register relaxes single-writer to "many writers, but every write carries
// the same value" — the paper's flag[] registers are the boolean case
// (sticky bits). Both share one implementation over 2t+1 base registers
// placed on distinct disks:
//
//   WRITE(v): write v to all 2t+1 base registers; wait for t+1.
//   READ():   read t+1 responses. If all carry the initial value, return
//             initial. Otherwise let v be the (unique) non-initial value
//             seen; write v back to the 2t+1 registers, wait for t+1, and
//             return v.
//
// The reader write-back is what makes the register atomic: once a READ
// returned v, v sits on a majority, so every later READ's quorum
// intersects it and also returns v. Uniqueness of the non-initial value is
// the caller's promise (single writer / single possible value) — without
// it the construction is exactly the kind of multi-valued MWMR register
// the paper proves unimplementable with finitely many base registers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/status.h"
#include "core/config.h"
#include "core/register_set.h"

namespace nadreg::core {

/// Shared implementation: a register whose every write, by any process,
/// carries one and the same value. One instance per accessing process.
class StableRegister {
 public:
  StableRegister(BaseRegisterClient& client, const FarmConfig& farm,
                 std::vector<RegisterId> regs, ProcessId self);

  /// Writes `v`. Caller's contract: every write to this register, by every
  /// process, passes an identical `v` (and `v` must be non-empty).
  void Write(const std::string& v);

  /// Reads. nullopt = initial value (no write is known to have completed).
  /// Wait-free: tolerates up to t crashed disks.
  std::optional<std::string> Read();

  /// True once this endpoint knows the value sits on a majority (after a
  /// successful Write or a non-initial Read). Lets callers skip redundant
  /// writes of stable state.
  bool Known() const { return known_.has_value(); }

  /// Split-phase read, allowing many stable registers to be read
  /// concurrently (the name snapshot pipelines a whole trie level this
  /// way). Begin issues the quorum reads; Finish blocks, applies the
  /// write-back rule and returns exactly what Read() would have.
  class InFlightRead {
   private:
    friend class StableRegister;
    RegisterSet::Ticket ticket_;
    bool cached_ = false;
  };
  InFlightRead BeginRead();
  std::optional<std::string> FinishRead(InFlightRead& read);

  /// Split-phase write (same contract as Write): many stable registers
  /// can be written concurrently (the name snapshot announces all of a
  /// name's path bits in one round trip this way).
  class InFlightWrite {
   private:
    friend class StableRegister;
    RegisterSet::Ticket ticket_;
    bool cached_ = false;
    std::string value_;
  };
  InFlightWrite BeginWrite(const std::string& v);
  void FinishWrite(InFlightWrite& write);

 private:
  RegisterSet set_;
  std::size_t quorum_;
  // A stable register can never change once observed: cache it.
  std::optional<std::string> known_;
};

/// One-shot SWMR register: a single owner may write once.
class OneShotRegister {
 public:
  OneShotRegister(BaseRegisterClient& client, const FarmConfig& farm,
                  std::vector<RegisterId> regs, ProcessId self);

  /// First write succeeds; later writes return kAlreadyWritten (local
  /// enforcement of the single-write contract; `v` must be non-empty —
  /// the empty string is the initial value).
  Status Write(const std::string& v);

  /// nullopt = initial value.
  std::optional<std::string> Read();

 private:
  StableRegister inner_;
  bool written_ = false;
};

/// Sticky bit: a boolean MWMR register that flips once from false to true
/// (all writes are "true" — trivially the same value).
class StickyBit {
 public:
  StickyBit(BaseRegisterClient& client, const FarmConfig& farm,
            std::vector<RegisterId> regs, ProcessId self);

  void Set();
  bool IsSet();
  /// True once this endpoint has majority-visible evidence the bit is set.
  bool KnownSet() const { return inner_.Known(); }

  /// Split-phase IsSet (see StableRegister::BeginRead/FinishRead).
  using InFlightRead = StableRegister::InFlightRead;
  InFlightRead BeginIsSet() { return inner_.BeginRead(); }
  bool FinishIsSet(InFlightRead& read) {
    return inner_.FinishRead(read).has_value();
  }

  /// Split-phase Set (see StableRegister::BeginWrite/FinishWrite).
  using InFlightWrite = StableRegister::InFlightWrite;
  InFlightWrite BeginSet() { return inner_.BeginWrite("1"); }
  void FinishSet(InFlightWrite& write) { inner_.FinishWrite(write); }

 private:
  StableRegister inner_;
};

}  // namespace nadreg::core
