#include "core/oneshot.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nadreg::core {

namespace {

obs::Histogram& WriteBackHist() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("stable.write_back_us");
  return h;
}

}  // namespace

StableRegister::StableRegister(BaseRegisterClient& client,
                               const FarmConfig& farm,
                               std::vector<RegisterId> regs, ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "stable register needs 2t+1 base registers");
}

void StableRegister::Write(const std::string& v) {
  InFlightWrite write = BeginWrite(v);
  FinishWrite(write);
}

Status StableRegister::Write(const std::string& v, const OpOptions& opts) {
  obs::ScopedPhase phase(nullptr, "stable", "write", opts.label);
  InFlightWrite write = BeginWrite(v);
  return FinishWriteUntil(write, opts.Start());
}

StableRegister::InFlightWrite StableRegister::BeginWrite(const std::string& v) {
  assert(!v.empty() && "the empty string is reserved as the initial value");
  assert((!known_ || *known_ == v) &&
         "stable register: all writes must carry the same value");
  InFlightWrite write;
  if (known_) {
    write.cached_ = true;  // already on a majority; re-writing changes nothing
    return write;
  }
  write.value_ = v;
  write.ticket_ = set_.WriteAll(v);
  return write;
}

void StableRegister::FinishWrite(InFlightWrite& write) {
  Status s = FinishWriteUntil(write, std::nullopt);
  assert(s.ok());
  (void)s;
}

Status StableRegister::FinishWriteUntil(InFlightWrite& write,
                                        OpDeadline deadline) {
  if (write.cached_) return Status::Ok();
  if (!set_.AwaitUntil(write.ticket_, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("stable write: quorum not reached before deadline");
  }
  known_ = write.value_;
  ++writes_done_;
  return Status::Ok();
}

std::optional<std::string> StableRegister::Read() {
  InFlightRead read = BeginRead();
  return FinishRead(read);
}

Expected<std::optional<std::string>> StableRegister::Read(
    const OpOptions& opts) {
  obs::ScopedPhase phase(nullptr, "stable", "read", opts.label);
  InFlightRead read = BeginRead();
  return FinishReadUntil(read, opts.Start());
}

StableRegister::InFlightRead StableRegister::BeginRead() {
  InFlightRead read;
  if (known_) {
    read.cached_ = true;  // stable: can never change once observed
    return read;
  }
  read.ticket_ = set_.ReadAll();
  return read;
}

std::optional<std::string> StableRegister::FinishRead(InFlightRead& read) {
  auto v = FinishReadUntil(read, std::nullopt);
  assert(v.ok());
  return std::move(*v);
}

Expected<std::optional<std::string>> StableRegister::FinishReadUntil(
    InFlightRead& read, OpDeadline deadline) {
  if (read.cached_) return known_;
  if (!set_.AwaitUntil(read.ticket_, quorum_, deadline)) {
    ++timeouts_;
    return Status::Timeout("stable read: quorum not reached before deadline");
  }
  std::string seen;
  for (const auto& [idx, bytes] : read.ticket_.Results()) {
    if (!bytes.empty()) {
      seen = bytes;
      break;
    }
  }
  if (seen.empty()) {
    ++reads_done_;
    return std::optional<std::string>{};  // all initial
  }
  // Write-back before returning: after this, v is on a majority and every
  // later READ is guaranteed to see it (atomicity across readers).
  {
    obs::ScopedPhase phase(&WriteBackHist(), "stable", "write_back");
    auto wb = set_.WriteAll(seen);
    if (!set_.AwaitUntil(wb, quorum_, deadline)) {
      ++timeouts_;
      return Status::Timeout("stable read: write-back timed out");
    }
  }
  known_ = seen;
  ++reads_done_;
  return known_;
}

obs::PhaseCounters StableRegister::op_metrics() const {
  obs::PhaseCounters out = set_.op_metrics();
  out.reads = reads_done_;
  out.writes = writes_done_;
  out.deadline_timeouts = timeouts_;
  return out;
}

OneShotRegister::OneShotRegister(BaseRegisterClient& client,
                                 const FarmConfig& farm,
                                 std::vector<RegisterId> regs, ProcessId self)
    : inner_(client, farm, std::move(regs), self) {}

Status OneShotRegister::Write(const std::string& v) {
  return Write(v, OpOptions{});
}

Status OneShotRegister::Write(const std::string& v, const OpOptions& opts) {
  if (written_) return Status::AlreadyWritten();
  if (v.empty()) return Status::Invalid("one-shot: empty value is reserved");
  written_ = true;
  return inner_.Write(v, opts);
}

Status OneShotRegister::WriteUntil(const std::string& v, OpDeadline deadline) {
  if (written_) return Status::AlreadyWritten();
  if (v.empty()) return Status::Invalid("one-shot: empty value is reserved");
  written_ = true;
  auto write = inner_.BeginWrite(v);
  return inner_.FinishWriteUntil(write, deadline);
}

std::optional<std::string> OneShotRegister::Read() { return inner_.Read(); }

Expected<std::optional<std::string>> OneShotRegister::Read(
    const OpOptions& opts) {
  return inner_.Read(opts);
}

Expected<std::optional<std::string>> OneShotRegister::ReadUntil(
    OpDeadline deadline) {
  auto read = inner_.BeginRead();
  return inner_.FinishReadUntil(read, deadline);
}

StickyBit::StickyBit(BaseRegisterClient& client, const FarmConfig& farm,
                     std::vector<RegisterId> regs, ProcessId self)
    : inner_(client, farm, std::move(regs), self) {}

void StickyBit::Set() { inner_.Write("1"); }

bool StickyBit::IsSet() { return inner_.Read().has_value(); }

Status StickyBit::SetUntil(OpDeadline deadline) {
  auto write = inner_.BeginWrite("1");
  return inner_.FinishWriteUntil(write, deadline);
}

Expected<bool> StickyBit::IsSetUntil(OpDeadline deadline) {
  auto read = inner_.BeginRead();
  return FinishIsSetUntil(read, deadline);
}

}  // namespace nadreg::core
