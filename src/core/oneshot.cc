#include "core/oneshot.h"

#include <cassert>

namespace nadreg::core {

StableRegister::StableRegister(BaseRegisterClient& client,
                               const FarmConfig& farm,
                               std::vector<RegisterId> regs, ProcessId self)
    : set_(client, self, std::move(regs)), quorum_(farm.quorum()) {
  assert(set_.size() == farm.num_disks() &&
         "stable register needs 2t+1 base registers");
}

void StableRegister::Write(const std::string& v) {
  InFlightWrite write = BeginWrite(v);
  FinishWrite(write);
}

StableRegister::InFlightWrite StableRegister::BeginWrite(const std::string& v) {
  assert(!v.empty() && "the empty string is reserved as the initial value");
  assert((!known_ || *known_ == v) &&
         "stable register: all writes must carry the same value");
  InFlightWrite write;
  if (known_) {
    write.cached_ = true;  // already on a majority; re-writing changes nothing
    return write;
  }
  write.value_ = v;
  write.ticket_ = set_.WriteAll(v);
  return write;
}

void StableRegister::FinishWrite(InFlightWrite& write) {
  if (write.cached_) return;
  set_.Await(write.ticket_, quorum_);
  known_ = write.value_;
}

std::optional<std::string> StableRegister::Read() {
  InFlightRead read = BeginRead();
  return FinishRead(read);
}

StableRegister::InFlightRead StableRegister::BeginRead() {
  InFlightRead read;
  if (known_) {
    read.cached_ = true;  // stable: can never change once observed
    return read;
  }
  read.ticket_ = set_.ReadAll();
  return read;
}

std::optional<std::string> StableRegister::FinishRead(InFlightRead& read) {
  if (read.cached_) return known_;
  set_.Await(read.ticket_, quorum_);
  std::string seen;
  for (const auto& [idx, bytes] : read.ticket_.Results()) {
    if (!bytes.empty()) {
      seen = bytes;
      break;
    }
  }
  if (seen.empty()) return std::nullopt;  // all initial
  // Write-back before returning: after this, v is on a majority and every
  // later READ is guaranteed to see it (atomicity across readers).
  auto wb = set_.WriteAll(seen);
  set_.Await(wb, quorum_);
  known_ = seen;
  return known_;
}

OneShotRegister::OneShotRegister(BaseRegisterClient& client,
                                 const FarmConfig& farm,
                                 std::vector<RegisterId> regs, ProcessId self)
    : inner_(client, farm, std::move(regs), self) {}

Status OneShotRegister::Write(const std::string& v) {
  if (written_) return Status::AlreadyWritten();
  if (v.empty()) return Status::Invalid("one-shot: empty value is reserved");
  written_ = true;
  inner_.Write(v);
  return Status::Ok();
}

std::optional<std::string> OneShotRegister::Read() { return inner_.Read(); }

StickyBit::StickyBit(BaseRegisterClient& client, const FarmConfig& farm,
                     std::vector<RegisterId> regs, ProcessId self)
    : inner_(client, farm, std::move(regs), self) {}

void StickyBit::Set() { inner_.Write("1"); }

bool StickyBit::IsSet() { return inner_.Read().has_value(); }

}  // namespace nadreg::core
