/// \file
/// Deterministic block-address layout on the disks — the "on-disk format"
/// of the emulated objects. Every process must compute identical addresses
/// without coordination (uniformity), so the layout is a pure function.
///
/// A BlockId is a 64-bit LBA, carved as
///
///     [ object : 10 bits ][ component : 4 bits ][ key : 50 bits ]
///
/// * object    — which emulated object instance (an application-chosen id);
/// * component — which part of the object's on-disk structure;
/// * key       — component-specific: a packed Name for per-name registers,
///               or a heap-encoded trie node for the name-directory bits.
///
/// Name packing: Name{pid, index} packs into 48 bits as (pid:32 | index:16).
/// This is an *addressing* discipline, not a model restriction: the model's
/// namespace is unbounded; a 64-bit LBA (like a real disk's) simply bounds
/// how many distinct names one deployment can address, exactly as a real
/// disk bounds how many blocks it can address.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"

namespace nadreg::core {

enum class Component : std::uint8_t {
  kFixed = 0,     // the single block of a finite-register algorithm
  kTrieMark = 1,  // name-directory sticky bit (heap-encoded trie node)
  kView = 2,      // published snapshot view of a name (one-shot)
  kValue = 3,      // Fig. 3 one-shot v[name]
  kScratch = 4,    // application use
  kCodedCell = 5,  // erasure-coded cell (tagged fragments, core/coded)
};

/// How Names map onto trie paths: `name_bits` is the packed width (= the
/// name-directory trie's depth), `index_bits` how many low bits hold
/// Name::index (the rest hold Name::pid). The default reproduces the
/// deployment layout above. Smaller layouts exist for bounded model
/// checking: the paper's trie serves an *unbounded* namespace, but a
/// checked scenario draws from a known finite set of names, and a trie
/// deeper than log2 of that set only multiplies every announce/collect
/// by dozens of base operations without adding behaviors. All endpoints
/// of one emulated object must agree on the layout (it is part of the
/// on-disk format, like `object` itself).
struct NameLayout {
  int name_bits = 48;
  int index_bits = 16;

  std::uint64_t Pack(const Name& n) const {
    assert(index_bits < name_bits && name_bits <= 48 &&
           "NameLayout: widths out of range");
    assert(n.index < (1ULL << index_bits) &&
           "NameLayout: index exceeds addressing width");
    assert(n.pid < (1ULL << (name_bits - index_bits)) &&
           "NameLayout: pid exceeds addressing width");
    return (n.pid << index_bits) | n.index;
  }
  Name Unpack(std::uint64_t packed) const {
    return Name{packed >> index_bits, packed & ((1ULL << index_bits) - 1)};
  }
};

/// Packs a Name into 48 bits. Precondition: pid < 2^32 and index < 2^16.
inline std::uint64_t PackName(const Name& n) { return NameLayout{}.Pack(n); }

inline Name UnpackName(std::uint64_t packed) {
  return NameLayout{}.Unpack(packed);
}

/// Heap encoding of a binary-trie node: root is 1, child(x, bit) = 2x+bit.
/// Depth up to 48 fits in 50 bits (indices below 2^49).
inline std::uint64_t TrieRoot() { return 1; }
inline std::uint64_t TrieChild(std::uint64_t node, unsigned bit) {
  assert(bit <= 1);
  return node * 2 + bit;
}

/// Composes a BlockId from (object, component, key).
inline BlockId MakeBlock(std::uint32_t object, Component component,
                         std::uint64_t key) {
  assert(object < (1u << 10) && "MakeBlock: object id exceeds 10 bits");
  assert(key < (1ULL << 50) && "MakeBlock: key exceeds 50 bits");
  return (static_cast<std::uint64_t>(object) << 54) |
         (static_cast<std::uint64_t>(component) << 50) | key;
}

}  // namespace nadreg::core
