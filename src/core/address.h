/// \file
/// Deterministic block-address layout on the disks — the "on-disk format"
/// of the emulated objects. Every process must compute identical addresses
/// without coordination (uniformity), so the layout is a pure function.
///
/// A BlockId is a 64-bit LBA, carved as
///
///     [ object : 10 bits ][ component : 4 bits ][ key : 50 bits ]
///
/// * object    — which emulated object instance (an application-chosen id);
/// * component — which part of the object's on-disk structure;
/// * key       — component-specific: a packed Name for per-name registers,
///               or a heap-encoded trie node for the name-directory bits.
///
/// Name packing: Name{pid, index} packs into 48 bits as (pid:32 | index:16).
/// This is an *addressing* discipline, not a model restriction: the model's
/// namespace is unbounded; a 64-bit LBA (like a real disk's) simply bounds
/// how many distinct names one deployment can address, exactly as a real
/// disk bounds how many blocks it can address.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"

namespace nadreg::core {

enum class Component : std::uint8_t {
  kFixed = 0,     // the single block of a finite-register algorithm
  kTrieMark = 1,  // name-directory sticky bit (heap-encoded trie node)
  kView = 2,      // published snapshot view of a name (one-shot)
  kValue = 3,     // Fig. 3 one-shot v[name]
  kScratch = 4,   // application use
};

/// Packs a Name into 48 bits. Precondition: pid < 2^32 and index < 2^16.
inline std::uint64_t PackName(const Name& n) {
  assert(n.pid < (1ULL << 32) && "PackName: pid exceeds addressing width");
  assert(n.index < (1ULL << 16) && "PackName: index exceeds addressing width");
  return (n.pid << 16) | n.index;
}

inline Name UnpackName(std::uint64_t packed) {
  return Name{packed >> 16, packed & 0xffff};
}

/// Heap encoding of a binary-trie node: root is 1, child(x, bit) = 2x+bit.
/// Depth up to 48 fits in 50 bits (indices below 2^49).
inline std::uint64_t TrieRoot() { return 1; }
inline std::uint64_t TrieChild(std::uint64_t node, unsigned bit) {
  assert(bit <= 1);
  return node * 2 + bit;
}

/// Composes a BlockId from (object, component, key).
inline BlockId MakeBlock(std::uint32_t object, Component component,
                         std::uint64_t key) {
  assert(object < (1u << 10) && "MakeBlock: object id exceeds 10 bits");
  assert(key < (1ULL << 50) && "MakeBlock: key exceeds 50 bits");
  return (static_cast<std::uint64_t>(object) << 54) |
         (static_cast<std::uint64_t>(component) << 50) | key;
}

}  // namespace nadreg::core
