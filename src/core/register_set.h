/// \file
/// One process's quorum engine over a fixed set of base registers, with the
/// paper's pending-write discipline.
///
/// Model rule (Section 2): a process never has two simultaneous operations
/// outstanding on the same base register. Footnotes 3/6/7: if a WRITE wants
/// to write a base register that still has a pending write from a previous
/// WRITE, the writer "forks a background task to issue the write as soon as
/// all previous writes have finished". RegisterSet implements exactly that:
/// per base register it keeps at most one outstanding operation and a FIFO
/// of follow-ups, issued from the completion handler of the predecessor. A
/// crashed register therefore stalls its queue forever — and the quorum
/// waits never require it, which is what keeps the algorithms wait-free.
///
/// Consecutive queued reads are coalesced (a queued-but-unissued read is
/// indistinguishable from a fresh one), so a loop of READ phases over a
/// crashed register uses O(1) memory.
///
/// A phase's immediately-issuable registers go to the client in one
/// vectored IssueReads/IssueWrites call, so the TCP backend collapses the
/// whole fan-out into one batched frame per disk (per-register semantics
/// are untouched — each op still completes, or silently never does, on
/// its own).
///
/// Observability: the engine accounts for the paper's two cost centres —
/// time blocked in quorum waits and depth of the pending-write queues —
/// both locally (op_metrics()) and in the global obs registry
/// ("core.quorum_wait_us", "core.pending_depth").
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/base_register.h"
#include "common/op_options.h"
#include "common/types.h"
#include "obs/instrumented.h"

namespace nadreg::core {

class RegisterSet : public obs::Instrumented {
 public:
  /// Completion record of one quorum call: which registers responded and,
  /// for reads, what they returned.
  class Ticket {
   public:
    /// Number of completions so far.
    std::size_t Completed() const;
    /// (register index, value) pairs completed so far; writes carry an
    /// empty value. Indices refer to the constructor's register vector.
    std::vector<std::pair<std::size_t, Value>> Results() const;

   private:
    friend class RegisterSet;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// `client` must outlive this object and all of its pending operations.
  RegisterSet(BaseRegisterClient& client, ProcessId self,
              std::vector<RegisterId> regs);

  RegisterSet(const RegisterSet&) = delete;
  RegisterSet& operator=(const RegisterSet&) = delete;

  std::size_t size() const;
  ProcessId self() const;
  const std::vector<RegisterId>& registers() const;

  /// Issues (or queues, per the pending-write discipline) a write of `v`
  /// to every base register of the set.
  Ticket WriteAll(const Value& v);

  /// Issues (or queues, with coalescing) a read of every base register.
  Ticket ReadAll();

  /// Issues (or queues, like writes) a coded-cell merge with a DISTINCT
  /// delta per base register — the coded write phase's fan-out, where
  /// register i receives fragment i's Put delta. `deltas` must have one
  /// entry per register. Requires client.SupportsMerge(); merges follow
  /// the same pending-op discipline as writes (no coalescing — every
  /// delta must take effect).
  Ticket MergeEach(std::vector<Value> deltas);

  /// Blocks until at least `k` of the ticket's operations completed.
  /// Returns false on timeout (when a deadline is supplied).
  bool Await(const Ticket& ticket, std::size_t k,
             std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Await against an absolute deadline (the unified-API plumbing).
  bool AwaitUntil(const Ticket& ticket, std::size_t k, OpDeadline deadline);

  /// Quorum-wait and pending-queue accounting for this set.
  obs::PhaseCounters op_metrics() const override;

 private:
  struct Shared;
  std::shared_ptr<Shared> shared_;
};

}  // namespace nadreg::core
