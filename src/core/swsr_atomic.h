/// \file
/// Uniform wait-free atomic SWSR register from 2t+1 fail-prone base
/// registers (Section 3.2) — the "Yes" cell of Table 1.
///
///   WRITE(v):  issue write of (writer, ++seq, v) to all 2t+1 base
///              registers; wait for t+1 to complete.
///   READ():    read t+1 of the 2t+1; return the payload with the largest
///              sequence number among the values read *and the largest
///              sequence number ever seen before*.
///
/// Correctness (paper): (1) sequence numbers make it impossible to READ
/// values out of order — the reader's memo of the largest seq ever seen is
/// what gives regularity between its own READs; (2) a completed WRITE
/// reached a majority, every later READ quorum intersects it, so the READ
/// sees that value or a later one.
///
/// Wait-freedom: quorums never wait for more than t+1 of 2t+1 registers, so
/// up to t crashed registers (or disks) cannot block any operation, and no
/// operation ever waits for another process.
#pragma once

#include <cstdint>
#include <string>

#include "common/base_register.h"
#include "common/codec.h"
#include "common/op_options.h"
#include "common/status.h"
#include "core/config.h"
#include "core/register_set.h"
#include "obs/instrumented.h"

namespace nadreg::core {

/// Writer endpoint. Single designated writer: construct exactly one.
class SwsrAtomicWriter : public obs::Instrumented {
 public:
  SwsrAtomicWriter(BaseRegisterClient& client, const FarmConfig& farm,
                   std::vector<RegisterId> regs, ProcessId self);

  /// WRITE(v). Returns when the value is stored on a majority. Any base
  /// writes still pending after return follow the Fig. 1 discipline.
  void Write(const std::string& v);

  /// Unified API: WRITE(v) under an optional deadline/trace label.
  /// kTimeout = the quorum did not complete in time (the write may still
  /// land later via its pending base writes).
  Status Write(const std::string& v, const OpOptions& opts);

  obs::PhaseCounters op_metrics() const override;

 private:
  RegisterSet set_;
  std::size_t quorum_;
  SeqNum seq_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

/// Reader endpoint. Single designated reader: construct exactly one.
class SwsrAtomicReader : public obs::Instrumented {
 public:
  SwsrAtomicReader(BaseRegisterClient& client, const FarmConfig& farm,
                   std::vector<RegisterId> regs, ProcessId self);

  /// READ(). Wait-free; returns the current value (empty string if the
  /// register was never written).
  std::string Read();

  /// Unified API: READ under an optional deadline/trace label.
  Expected<std::string> Read(const OpOptions& opts);

  obs::PhaseCounters op_metrics() const override;

 private:
  RegisterSet set_;
  std::size_t quorum_;
  TaggedValue best_;  // largest (seq) ever seen — the reader's memo
  std::uint64_t reads_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

/// Ablation of the Section 3.2 design choice: the same reader WITHOUT the
/// "largest sequence number ever seen" memo. The result is a *regular*
/// register, not an atomic one: two sequential READs straddling a torn
/// WRITE may observe new-then-old (new-old inversion), which regularity
/// permits and atomicity forbids. bench/ablation_reader_memo demonstrates
/// the separation with a concrete schedule and both checkers.
class SwsrRegularReader : public obs::Instrumented {
 public:
  SwsrRegularReader(BaseRegisterClient& client, const FarmConfig& farm,
                    std::vector<RegisterId> regs, ProcessId self);

  /// READ(): the freshest value among a majority — no cross-READ state.
  std::string Read();

  /// Unified API: READ under an optional deadline/trace label.
  Expected<std::string> Read(const OpOptions& opts);

  obs::PhaseCounters op_metrics() const override;

 private:
  RegisterSet set_;
  std::size_t quorum_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace nadreg::core
