/// \file
/// Configurable randomized workload runner: spins up writer/reader threads
/// against a chosen register emulation on a seeded simulated farm (or a
/// real TCP disk cluster) with optional fault injection, records the
/// concurrent history, and returns it together with the consistency level
/// the algorithm claims. Used by the property-test sweeps
/// (tests/test_properties.cc), the chaos harness (bench/chaos_harness.cc)
/// and the bench binaries.
///
/// Fault injection comes in two flavours: the legacy `crash_disks` knob
/// (random whole-disk crashes, kept for the property sweeps) and a full
/// declarative `fault_plan_text` (faults/fault_plan.h grammar) replayed in
/// real time by a FaultInjector against whichever backend is running. An
/// `op_deadline` bounds every emulated operation so an over-budget plan
/// (more than t crashed disks) surfaces as counted timeouts instead of a
/// hung run; abandoned writes stay in the history as incomplete (the
/// checker may linearize them — Fig. 1 pending-write semantics).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "checker/consistency.h"
#include "checker/history.h"
#include "common/status.h"

namespace nadreg::harness {

enum class Algorithm {
  kSwsrAtomic,    // Sec. 3.2 — claims atomic (1 writer, 1 reader)
  kSwmrAtomic,    // Sec. 4.2 — claims atomic (1 writer, n readers)
  kMwsrSeqCst,    // Fig. 2  — claims sequentially consistent (n writers, 1 reader)
  kMwmrAtomic,    // Fig. 3  — claims atomic (n writers, n readers)
  kSwsrRegular,   // Sec. 3.2 without the reader memo — claims regular only
  kCodedMwmr,     // core/coded — claims atomic (n writers, n readers, RS-coded)
};

/// The consistency level an algorithm guarantees (what to check).
enum class Claim { kAtomic, kSequentiallyConsistent, kRegular };

struct WorkloadOptions {
  Algorithm algorithm = Algorithm::kSwsrAtomic;
  std::uint64_t seed = 1;
  std::uint32_t t = 1;       // farm resilience; 2t+1 disks
  /// kCodedMwmr only: code geometry (n disks, any k fragments decode).
  /// The coded deployment has n disks instead of 2t+1 and tolerates
  /// f = (n-k)/2 crashes — `crash_disks` is clamped to that budget.
  std::uint32_t coded_n = 8;
  std::uint32_t coded_k = 5;
  int writers = 1;           // clamped to the algorithm's writer limit
  int readers = 1;           // clamped to the algorithm's reader limit
  int ops_per_process = 5;
  int crash_disks = 0;       // full-disk crashes injected mid-run (<= t)
  std::size_t payload_bytes = 8;  // value size (distinct values always)
  std::uint64_t max_delay_us = 25;
  /// Run over REAL TCP disk daemons on loopback instead of the simulated
  /// farm; a "crash" then hard-stops a daemon process.
  bool over_tcp = false;
  /// Declarative fault schedule (faults/fault_plan.h spec grammar),
  /// replayed in real time over the run against the active backend.
  /// Empty = no injector. Parse errors abort the run before any worker
  /// starts (see WorkloadResult::fault_plan_status).
  std::string fault_plan_text;
  /// Per emulated-operation deadline; zero = block until the model
  /// guarantees termination. Required to survive over-budget plans: a
  /// timed-out op is abandoned and counted (WorkloadResult::timeouts).
  std::chrono::milliseconds op_deadline{0};
  /// TCP backend only: the NAD client's per-base-op expiry budget
  /// (janitor + circuit breaker; see nad/client.h). Zero = never expire.
  std::chrono::milliseconds client_op_timeout{0};
  /// TCP backend only: per-op frames instead of coalesced batch frames
  /// (the interop/ablation toggle, forwarded to nad::NadClient::Options).
  bool enable_batching = true;
  /// When non-empty, dump the process-wide metrics registry as JSON here
  /// after the run (quorum waits, per-phase latency, RPC round trips).
  std::string metrics_json_path;
  /// When non-empty, capture a chrome://tracing span file over the run.
  std::string trace_jsonl_path;
};

struct WorkloadResult {
  Claim claim = Claim::kAtomic;
  std::vector<checker::Operation> history;
  checker::CheckResult check;  // the claim, checked

  /// Global op counters ("harness.ops.writes"/"harness.ops.reads")
  /// sampled before and after the run; the deltas equal this run's
  /// completed operations (asserted in tests/test_properties.cc).
  std::uint64_t writes_before = 0, writes_after = 0;
  std::uint64_t reads_before = 0, reads_after = 0;

  /// Fault-injection accounting (zero without a fault plan / deadline).
  Status fault_plan_status = Status::Ok();  ///< parse result of the plan
  std::uint64_t faults_injected = 0;  ///< events the injector fired
  std::uint64_t timeouts = 0;         ///< ops abandoned at op_deadline

  bool ok() const { return check.ok && fault_plan_status.ok(); }
};

/// Runs the workload and checks the algorithm's claimed consistency.
WorkloadResult RunWorkload(const WorkloadOptions& opts);

/// Human-readable label, for parameterized test names.
std::string AlgorithmName(Algorithm a);

}  // namespace nadreg::harness
