#include "harness/workload.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "common/op_options.h"
#include "common/rng.h"
#include "core/config.h"
#include "faults/fault_plan.h"
#include "faults/fault_sink.h"
#include "faults/injector.h"
#include "core/coded/coded_mwmr.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "core/swmr_atomic.h"
#include "core/swsr_atomic.h"
#include "common/log.h"
#include "nad/client.h"
#include "nad/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/sim_farm.h"

namespace nadreg::harness {

namespace {

using checker::HistoryRecorder;
using core::FarmConfig;
using sim::SimFarm;

/// Distinct, payload-sized value: "<w>.<i>" padded to the requested size.
std::string MakeValue(int writer, int i, std::size_t payload_bytes) {
  std::string v = std::to_string(writer) + "." + std::to_string(i);
  if (v.size() < payload_bytes) v.resize(payload_bytes, '#');
  return v;
}

/// Fans FaultSink calls out to the right TCP daemon by DiskId — the
/// cluster's fault-domain router (here one daemon serves one disk, so
/// the daemon-side DiskId argument is redundant but harmless).
struct ClusterFaultSink : faults::FaultSink {
  std::map<DiskId, nad::NadServer*> by_disk;

  nad::NadServer* At(DiskId d) {
    auto it = by_disk.find(d);
    return it == by_disk.end() ? nullptr : it->second;
  }
  void CrashRegister(const RegisterId& r) override {
    if (auto* s = At(r.disk)) s->CrashRegister(r);
  }
  void CrashDisk(DiskId d) override {
    if (auto* s = At(d)) s->CrashDisk(d);
  }
  void DelayDisk(DiskId d, std::uint64_t min_us, std::uint64_t max_us) override {
    if (auto* s = At(d)) s->DelayDisk(d, min_us, max_us);
  }
  void DropRequests(DiskId d, std::uint32_t permille) override {
    if (auto* s = At(d)) s->DropRequests(d, permille);
  }
  void DisconnectDisk(DiskId d) override {
    if (auto* s = At(d)) s->DisconnectDisk(d);
  }
  void StallDisk(DiskId d, std::chrono::milliseconds dur) override {
    if (auto* s = At(d)) s->StallDisk(d, dur);
  }
  void Heal(DiskId d) override {
    if (auto* s = At(d)) s->Heal(d);
  }
};

/// The disk substrate behind a workload: the simulated farm or a cluster
/// of real TCP disk daemons on loopback.
struct Backend {
  std::unique_ptr<SimFarm> sim;
  std::vector<std::unique_ptr<nad::NadServer>> servers;
  std::unique_ptr<nad::NadClient> tcp;
  ClusterFaultSink tcp_sink;

  static Backend Make(const WorkloadOptions& opts, std::size_t num_disks) {
    Backend b;
    if (!opts.over_tcp) {
      SimFarm::Options farm_opts;
      farm_opts.seed = opts.seed;
      farm_opts.max_delay_us = opts.max_delay_us;
      b.sim = std::make_unique<SimFarm>(farm_opts);
      return b;
    }
    std::map<DiskId, nad::NadClient::Endpoint> endpoints;
    for (DiskId d = 0; d < num_disks; ++d) {
      nad::NadServer::Options so;
      so.seed = opts.seed + d;
      so.max_delay_us = opts.max_delay_us;
      auto server = nad::NadServer::Start(so);
      if (!server.ok()) continue;  // a missing disk simply looks crashed
      endpoints[d] = nad::NadClient::Endpoint{"127.0.0.1", (*server)->port()};
      b.tcp_sink.by_disk[d] = server->get();
      b.servers.push_back(std::move(*server));
    }
    nad::NadClient::Options copts;
    copts.enable_batching = opts.enable_batching;
    copts.op_timeout = opts.client_op_timeout;
    auto client = nad::NadClient::Connect(endpoints, copts);
    if (client.ok()) b.tcp = std::move(*client);
    return b;
  }

  BaseRegisterClient& client() {
    if (sim) return *sim;
    return *tcp;
  }

  /// The fault-injection surface of whichever substrate is live.
  faults::FaultSink& sink() {
    if (sim) return *sim;
    return tcp_sink;
  }

  void Crash(DiskId d) {
    if (sim) {
      sim->CrashDisk(d);
    } else if (d < servers.size()) {
      servers[d]->Stop();  // hard kill: the daemon stops answering
    }
  }
};

std::jthread CrashInjector(Backend& backend, std::size_t num_disks,
                           std::uint32_t crash_budget, std::uint64_t seed,
                           int crash_disks) {
  return std::jthread([&backend, num_disks, crash_budget, seed, crash_disks] {
    if (crash_disks <= 0) return;
    Rng rng(seed ^ 0xdeadULL);
    std::vector<DiskId> disks;
    for (DiskId d = 0; d < num_disks; ++d) disks.push_back(d);
    const int n = std::min<int>(crash_disks, static_cast<int>(crash_budget));
    for (int k = 0; k < n; ++k) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.Between(200, 2500)));
      const std::size_t pick = rng.Below(disks.size());
      backend.Crash(disks[pick]);
      disks.erase(disks.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  });
}

}  // namespace

std::string AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSwsrAtomic: return "SwsrAtomic";
    case Algorithm::kSwmrAtomic: return "SwmrAtomic";
    case Algorithm::kMwsrSeqCst: return "MwsrSeqCst";
    case Algorithm::kMwmrAtomic: return "MwmrAtomic";
    case Algorithm::kSwsrRegular: return "SwsrRegular";
    case Algorithm::kCodedMwmr: return "CodedMwmr";
  }
  return "?";
}

WorkloadResult RunWorkload(const WorkloadOptions& opts) {
  WorkloadResult result;
  obs::Counter& op_writes =
      obs::Registry::Global().GetCounter("harness.ops.writes");
  obs::Counter& op_reads =
      obs::Registry::Global().GetCounter("harness.ops.reads");
  result.writes_before = op_writes.Get();
  result.reads_before = op_reads.Get();
  if (!opts.trace_jsonl_path.empty()) {
    if (Status s = obs::StartTrace(opts.trace_jsonl_path); !s.ok()) {
      LOG_WARN << "workload: trace capture unavailable: " << s.ToString();
    }
  }
  // Parse the declarative fault plan before spinning anything up: a
  // malformed plan aborts the run (silently skipping the adversary would
  // make a chaos run vacuously green).
  std::optional<faults::FaultPlan> plan;
  if (!opts.fault_plan_text.empty()) {
    auto parsed = faults::FaultPlan::Parse(opts.fault_plan_text);
    if (!parsed.ok()) {
      result.fault_plan_status = parsed.status();
      if (!opts.trace_jsonl_path.empty()) obs::StopTrace();
      return result;
    }
    plan = std::move(*parsed);
  }
  FarmConfig cfg{opts.t};
  // The coded emulation sizes its own deployment: n disks (one fragment
  // home each), crash budget f = (n-k)/2, instead of the 2t+1 farm.
  const bool coded = opts.algorithm == Algorithm::kCodedMwmr;
  const core::CodedOptions coded_opts{opts.coded_n, opts.coded_k};
  const std::size_t num_disks = coded ? opts.coded_n : cfg.num_disks();
  const std::uint32_t crash_budget = coded ? coded_opts.f() : cfg.t;
  Backend backend = Backend::Make(opts, num_disks);
  BaseRegisterClient& farm = backend.client();
  HistoryRecorder rec;
  const auto regs = cfg.Spread(0);

  // Per-op deadline (zero = none) and the abandoned-op counter shared by
  // every worker thread. An abandoned WRITE stays in the history as
  // incomplete — CheckableHistory keeps it, because its pending base
  // writes may still take effect; an abandoned READ is dropped.
  OpOptions op_opts;
  if (opts.op_deadline.count() > 0) op_opts.deadline = opts.op_deadline;
  std::atomic<std::uint64_t> timeouts{0};

  // Clamp roles to the algorithm's single-writer/single-reader limits.
  int writers = opts.writers;
  int readers = opts.readers;
  switch (opts.algorithm) {
    case Algorithm::kSwsrAtomic:
      writers = 1;
      readers = 1;
      result.claim = Claim::kAtomic;
      break;
    case Algorithm::kSwmrAtomic:
      writers = 1;
      result.claim = Claim::kAtomic;
      break;
    case Algorithm::kMwsrSeqCst:
      readers = 1;
      result.claim = Claim::kSequentiallyConsistent;
      break;
    case Algorithm::kMwmrAtomic:
      result.claim = Claim::kAtomic;
      break;
    case Algorithm::kSwsrRegular:
      writers = 1;
      readers = 1;
      result.claim = Claim::kRegular;
      break;
    case Algorithm::kCodedMwmr:
      result.claim = Claim::kAtomic;
      break;
  }

  std::unique_ptr<faults::FaultInjector> fault_injector;
  if (plan) {
    fault_injector =
        std::make_unique<faults::FaultInjector>(std::move(*plan),
                                                backend.sink());
  }
  {
    if (fault_injector) fault_injector->Start();
    auto injector = CrashInjector(backend, num_disks, crash_budget, opts.seed,
                                  opts.crash_disks);
    std::vector<std::jthread> threads;
    for (int w = 0; w < writers; ++w) {
      const ProcessId pid = static_cast<ProcessId>(w + 1);
      threads.emplace_back([&, w, pid] {
        switch (opts.algorithm) {
          case Algorithm::kSwsrAtomic:
          case Algorithm::kSwmrAtomic:
          case Algorithm::kSwsrRegular: {
            core::SwsrAtomicWriter writer(farm, cfg, regs, pid);
            for (int i = 1; i <= opts.ops_per_process; ++i) {
              const std::string v = MakeValue(w + 1, i, opts.payload_bytes);
              auto h = rec.BeginWrite(pid, v);
              if (!writer.Write(v, op_opts).ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;  // abandoned WRITE: stays incomplete (pending)
              }
              rec.EndWrite(h);
              op_writes.Inc();
            }
            break;
          }
          case Algorithm::kMwsrSeqCst: {
            core::MwsrWriter writer(farm, cfg, regs, pid);
            for (int i = 1; i <= opts.ops_per_process; ++i) {
              const std::string v = MakeValue(w + 1, i, opts.payload_bytes);
              auto h = rec.BeginWrite(pid, v);
              if (!writer.Write(v, op_opts).ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndWrite(h);
              op_writes.Inc();
            }
            break;
          }
          case Algorithm::kMwmrAtomic: {
            core::MwmrAtomic reg(farm, cfg, 1, pid);
            for (int i = 1; i <= opts.ops_per_process; ++i) {
              const std::string v = MakeValue(w + 1, i, opts.payload_bytes);
              auto h = rec.BeginWrite(pid, v);
              if (!reg.Write(v, op_opts).ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndWrite(h);
              op_writes.Inc();
            }
            break;
          }
          case Algorithm::kCodedMwmr: {
            auto reg = core::CodedMwmr::Make(farm, 1, pid, coded_opts);
            if (!reg.ok()) {
              LOG_WARN << "workload: coded endpoint unavailable: "
                       << reg.status().ToString();
              break;
            }
            for (int i = 1; i <= opts.ops_per_process; ++i) {
              const std::string v = MakeValue(w + 1, i, opts.payload_bytes);
              auto h = rec.BeginWrite(pid, v);
              if (!reg->Write(v, op_opts).ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndWrite(h);
              op_writes.Inc();
            }
            break;
          }
        }
      });
    }
    for (int r = 0; r < readers; ++r) {
      const ProcessId pid = static_cast<ProcessId>(100 + r);
      threads.emplace_back([&, pid] {
        switch (opts.algorithm) {
          case Algorithm::kSwsrAtomic: {
            core::SwsrAtomicReader reader(farm, cfg, regs, pid);
            for (int i = 0; i < opts.ops_per_process; ++i) {
              auto h = rec.BeginRead(pid);
              auto v = reader.Read(op_opts);
              if (!v.ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;  // abandoned READ: dropped from the history
              }
              rec.EndRead(h, *v);
              op_reads.Inc();
            }
            break;
          }
          case Algorithm::kSwsrRegular: {
            core::SwsrRegularReader reader(farm, cfg, regs, pid);
            for (int i = 0; i < opts.ops_per_process; ++i) {
              auto h = rec.BeginRead(pid);
              auto v = reader.Read(op_opts);
              if (!v.ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndRead(h, *v);
              op_reads.Inc();
            }
            break;
          }
          case Algorithm::kSwmrAtomic: {
            core::SwmrAtomicReader reader(farm, cfg, regs, pid);
            for (int i = 0; i < opts.ops_per_process; ++i) {
              auto h = rec.BeginRead(pid);
              auto v = reader.Read(op_opts);
              if (!v.ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndRead(h, *v);
              op_reads.Inc();
            }
            break;
          }
          case Algorithm::kMwsrSeqCst: {
            core::MwsrReader reader(farm, cfg, regs, pid);
            for (int i = 0; i < opts.ops_per_process; ++i) {
              auto h = rec.BeginRead(pid);
              auto v = reader.Read(op_opts);
              if (!v.ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndRead(h, *v);
              op_reads.Inc();
            }
            break;
          }
          case Algorithm::kMwmrAtomic: {
            core::MwmrAtomic reg(farm, cfg, 1, pid);
            for (int i = 0; i < opts.ops_per_process; ++i) {
              auto h = rec.BeginRead(pid);
              auto v = reg.Read(op_opts);
              if (!v.ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndRead(h, v->value_or(""));
              op_reads.Inc();
            }
            break;
          }
          case Algorithm::kCodedMwmr: {
            auto reg = core::CodedMwmr::Make(farm, 1, pid, coded_opts);
            if (!reg.ok()) {
              LOG_WARN << "workload: coded endpoint unavailable: "
                       << reg.status().ToString();
              break;
            }
            for (int i = 0; i < opts.ops_per_process; ++i) {
              auto h = rec.BeginRead(pid);
              auto v = reg->Read(op_opts);
              if (!v.ok()) {
                timeouts.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              rec.EndRead(h, v->value_or(""));
              op_reads.Inc();
            }
            break;
          }
        }
      });
    }
  }

  if (fault_injector) {
    fault_injector->Stop();
    result.faults_injected = fault_injector->injected_count();
  }
  result.timeouts = timeouts.load(std::memory_order_relaxed);
  result.writes_after = op_writes.Get();
  result.reads_after = op_reads.Get();
  if (!opts.trace_jsonl_path.empty()) obs::StopTrace();
  if (!opts.metrics_json_path.empty()) {
    if (Status s =
            obs::Registry::Global().WriteJsonFile(opts.metrics_json_path);
        !s.ok()) {
      LOG_WARN << "workload: metrics artifact not written: " << s.ToString();
    }
  }

  result.history = rec.CheckableHistory();
  switch (result.claim) {
    case Claim::kAtomic:
      result.check = checker::CheckAtomic(result.history);
      break;
    case Claim::kSequentiallyConsistent:
      result.check = checker::CheckSequentiallyConsistent(result.history);
      break;
    case Claim::kRegular:
      result.check = checker::CheckRegular(result.history);
      break;
  }
  return result;
}

}  // namespace nadreg::harness
