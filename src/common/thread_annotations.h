/// \file
/// Macros mapping to Clang's Thread Safety Analysis attributes.
///
/// The repo's locking discipline (which field is guarded by which mutex,
/// which methods require or acquire which lock, and the lock hierarchy —
/// see DESIGN.md §12) is written down with these macros so that a Clang
/// build with -Wthread-safety turns a violated invariant into a compile
/// error. Under GCC (or Clang without the analysis) every macro expands
/// to nothing, so annotated code stays portable.
///
/// Enable checking with:  cmake -DNADREG_THREAD_SAFETY=ON  (Clang only),
/// which adds -Wthread-safety -Werror. The annotated primitives these
/// macros decorate live in common/sync.h (nadreg::Mutex / MutexLock /
/// CondVar); raw std::mutex is banned outside src/common/ by
/// scripts/lint_invariants.py.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define NADREG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NADREG_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a data member readable/writable only while holding `x`.
#define GUARDED_BY(x) NADREG_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointed-to data (not the pointer) is guarded by `x`.
#define PT_GUARDED_BY(x) NADREG_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define REQUIRES(...) \
  NADREG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release them.
#define ACQUIRE(...) NADREG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define RELEASE(...) NADREG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (deadlock prevention: it acquires them itself).
#define EXCLUDES(...) NADREG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  NADREG_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Declares a type to be a capability (lockable) with the given name.
#define CAPABILITY(x) NADREG_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime brackets a capability.
#define SCOPED_CAPABILITY NADREG_THREAD_ANNOTATION(scoped_lockable)

/// Asserts at runtime (to the analysis: promises) the capability is held.
#define ASSERT_CAPABILITY(x) NADREG_THREAD_ANNOTATION(assert_capability(x))

/// Documents lock-ordering: this mutex must be acquired after the listed ones.
#define ACQUIRED_AFTER(...) NADREG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Documents lock-ordering: this mutex must be acquired before the listed ones.
#define ACQUIRED_BEFORE(...) \
  NADREG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) NADREG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. locking a
/// dynamic collection of stripes). Use sparingly, with a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  NADREG_THREAD_ANNOTATION(no_thread_safety_analysis)
