/// \file
/// Minimal leveled logger. Thread safe, writes to stderr, off by default
/// above kWarn so tests stay quiet; harness binaries raise the level.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/sync.h"

namespace nadreg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load();
  }

  void Write(LogLevel level, const std::string& message);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  Mutex mu_;  // serializes whole lines onto stderr
};

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (Logger::Instance().Enabled(level_)) {
      Logger::Instance().Write(level_, stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Logger::Instance().Enabled(level_)) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace nadreg

#define NADREG_LOG(level) ::nadreg::internal::LogLine(::nadreg::LogLevel::level)
#define LOG_DEBUG NADREG_LOG(kDebug)
#define LOG_INFO NADREG_LOG(kInfo)
#define LOG_WARN NADREG_LOG(kWarn)
#define LOG_ERROR NADREG_LOG(kError)
