/// \file
/// Per-operation options for the unified emulated-register API.
///
/// Every emulation exposes one consistent shape:
///
///   Read(const OpOptions&)        -> Expected<...>   (kTimeout on deadline)
///   Write(value, const OpOptions&) -> Status         (kTimeout on deadline)
///
/// replacing the old Read()/ReadWithDeadline() split. The pre-existing
/// bare signatures remain as thin back-compat overloads.
///
/// A deadline is a harness/deployment concern, not part of the paper's
/// model: an operation abandoned on timeout may still take effect later
/// via its pending base-register writes (Fig. 1 discipline) — exactly like
/// the old ReadWithDeadline.
#pragma once

#include <chrono>
#include <optional>
#include <string>

namespace nadreg {

/// Absolute per-operation deadline, threaded through the emulation layers
/// down to the quorum waits. nullopt = block until the model guarantees
/// termination.
using OpDeadline = std::optional<std::chrono::steady_clock::time_point>;

struct OpOptions {
  /// Operation budget, relative to the call. nullopt = no deadline.
  std::optional<std::chrono::milliseconds> deadline;

  /// Free-form label attached to this operation's trace spans (shows up
  /// as "phase:label" in chrome://tracing). Empty = unlabelled.
  std::string label;

  static OpOptions WithDeadline(std::chrono::milliseconds d) {
    OpOptions o;
    o.deadline = d;
    return o;
  }

  /// Converts the relative budget to an absolute deadline at op start.
  OpDeadline Start() const {
    if (!deadline) return std::nullopt;
    return std::chrono::steady_clock::now() + *deadline;
  }
};

}  // namespace nadreg
