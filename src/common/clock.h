/// \file
/// Injectable monotonic clock for everything that schedules or expires
/// work: retry backoff deadlines, circuit-breaker cool-downs, fault-plan
/// event times. Production code asks a Clock* for `Now()` instead of
/// calling std::chrono::steady_clock::now() directly, so tests can drive
/// time deterministically (ManualClock) and the invariant linter can
/// forbid raw sleeps in the retry/fault paths (scripts/lint_invariants.py,
/// rule `no-sleep`): code that wants to pause must wait on a CondVar
/// against a deadline derived from a Clock, never block the thread with a
/// wall-clock sleep it cannot be woken from.
///
/// Ownership: Clock instances are never owned by the components that use
/// them — callers keep the clock alive for the component's lifetime.
/// Clock::Real() returns a process-wide singleton.
#pragma once

#include <atomic>
#include <chrono>

namespace nadreg {

/// Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time.
  virtual std::chrono::steady_clock::time_point Now() const = 0;

  /// The process-wide real clock (steady_clock passthrough).
  static Clock* Real();
};

/// Deterministic clock for tests: time only moves when advanced. Safe to
/// advance from one thread while another reads Now().
class ManualClock : public Clock {
 public:
  explicit ManualClock(std::chrono::steady_clock::time_point start =
                           std::chrono::steady_clock::time_point{})
      : now_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                    start.time_since_epoch())
                    .count()) {}

  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::time_point{
        std::chrono::microseconds(now_us_.load(std::memory_order_relaxed))};
  }

  void Advance(std::chrono::microseconds d) {
    now_us_.fetch_add(d.count(), std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_us_;
};

inline Clock* Clock::Real() {
  class RealClock final : public Clock {
   public:
    std::chrono::steady_clock::time_point Now() const override {
      return std::chrono::steady_clock::now();
    }
  };
  static RealClock clock;
  return &clock;
}

}  // namespace nadreg
