#include "common/coded_cell.h"

#include <algorithm>
#include <array>

#include "common/codec.h"

namespace nadreg {

namespace {

// Leading magic bytes keep cells and the two delta kinds self-describing:
// a merge handed the wrong record kind fails the decode instead of
// misinterpreting bytes.
constexpr std::uint8_t kCellMagic = 0xC0;
constexpr std::uint8_t kPutMagic =
    static_cast<std::uint8_t>(CodedDelta::Kind::kPut);
constexpr std::uint8_t kCommitMagic =
    static_cast<std::uint8_t>(CodedDelta::Kind::kCommit);

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b) c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

void PutTag(Encoder& e, const CodedTag& t) {
  e.PutU64(t.seq);
  e.PutU64(t.writer);
}

Expected<CodedTag> GetTag(Decoder& d) {
  auto seq = d.GetU64();
  if (!seq) return seq.status();
  auto writer = d.GetU64();
  if (!writer) return writer.status();
  return CodedTag{*seq, *writer};
}

void PutFragment(Encoder& e, const CodedFragment& f) {
  PutTag(e, f.tag);
  e.PutU8(f.index);
  e.PutU8(f.n);
  e.PutU8(f.k);
  e.PutU32(f.value_size);
  e.PutU32(f.crc);
  e.PutBytes(f.bytes);
}

Expected<CodedFragment> GetFragment(Decoder& d) {
  CodedFragment f;
  auto tag = GetTag(d);
  if (!tag) return tag.status();
  f.tag = *tag;
  auto index = d.GetU8();
  if (!index) return index.status();
  f.index = *index;
  auto n = d.GetU8();
  if (!n) return n.status();
  f.n = *n;
  auto k = d.GetU8();
  if (!k) return k.status();
  f.k = *k;
  auto value_size = d.GetU32();
  if (!value_size) return value_size.status();
  f.value_size = *value_size;
  auto crc = d.GetU32();
  if (!crc) return crc.status();
  f.crc = *crc;
  auto bytes = d.GetBytes();
  if (!bytes) return bytes.status();
  f.bytes = std::move(*bytes);
  return f;
}

/// Inserts or replaces the fragment for `f.tag`, keeping `frags` sorted by
/// tag ascending. Same-tag replacement is idempotent: a tag names one
/// write, and one write sends one fragment per disk.
void UpsertFragment(std::vector<CodedFragment>& frags, CodedFragment f) {
  auto it = std::lower_bound(
      frags.begin(), frags.end(), f.tag,
      [](const CodedFragment& a, const CodedTag& t) { return a.tag < t; });
  if (it != frags.end() && it->tag == f.tag) {
    *it = std::move(f);
  } else {
    frags.insert(it, std::move(f));
  }
}

/// Enforces the cell invariants after a merge step: drop fragments below
/// the committed tag (prune-on-commit), then cap the uncommitted suffix at
/// kMaxPendingTags by evicting the lowest uncommitted tags. Evicting an
/// uncommitted fragment is safe even if its Put already reached a write
/// quorum elsewhere: the commit that later arrives for it carries the
/// fragment and re-installs it (MergeCodedCell, kCommit).
void Normalize(CodedCell& cell) {
  std::erase_if(cell.frags, [&](const CodedFragment& f) {
    return f.tag < cell.committed;
  });
  std::size_t pending = 0;
  for (const CodedFragment& f : cell.frags) {
    if (f.tag > cell.committed) ++pending;
  }
  if (pending <= CodedCell::kMaxPendingTags) return;
  // frags is tag-ascending, so the lowest uncommitted tags come first
  // (after the at-most-one committed entry).
  std::size_t evict = pending - CodedCell::kMaxPendingTags;
  std::erase_if(cell.frags, [&](const CodedFragment& f) {
    if (evict == 0 || f.tag <= cell.committed) return false;
    --evict;
    return true;
  });
}

}  // namespace

std::uint32_t Crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t c = 0xffffffffu;
  for (unsigned char ch : bytes) c = table[(c ^ ch) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::string EncodeCodedCell(const CodedCell& cell) {
  std::string out;
  Encoder e(&out);
  e.PutU8(kCellMagic);
  PutTag(e, cell.committed);
  e.PutU32(static_cast<std::uint32_t>(cell.frags.size()));
  for (const CodedFragment& f : cell.frags) PutFragment(e, f);
  return out;
}

Expected<CodedCell> DecodeCodedCell(std::string_view bytes) {
  if (bytes.empty()) return CodedCell{};
  Decoder d(bytes);
  auto magic = d.GetU8();
  if (!magic) return magic.status();
  if (*magic != kCellMagic) return Status::Invalid("coded cell: bad magic");
  CodedCell cell;
  auto committed = GetTag(d);
  if (!committed) return committed.status();
  cell.committed = *committed;
  auto count = d.GetU32();
  if (!count) return count.status();
  // Each fragment costs >= 31 wire bytes (16 tag + 3 geometry + 4 size +
  // 4 crc + 4 length prefix) even with empty payload bytes; the bound
  // rejects a hostile count before any preallocation.
  constexpr std::uint32_t kFragmentWireMinBytes = 31;
  if (*count > d.Remaining() / kFragmentWireMinBytes) {
    return Status::Invalid("coded cell: fragment count exceeds buffer");
  }
  cell.frags.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto f = GetFragment(d);
    if (!f) return f.status();
    cell.frags.push_back(std::move(*f));
  }
  if (!d.AtEnd()) return Status::Invalid("coded cell: trailing bytes");
  return cell;
}

std::string EncodeCodedPut(const CodedFragment& frag) {
  std::string out;
  Encoder e(&out);
  e.PutU8(kPutMagic);
  PutFragment(e, frag);
  return out;
}

std::string EncodeCodedCommit(const CodedTag& tag) {
  std::string out;
  Encoder e(&out);
  e.PutU8(kCommitMagic);
  e.PutU8(0);  // no fragment
  PutTag(e, tag);
  return out;
}

std::string EncodeCodedCommit(const CodedFragment& frag) {
  std::string out;
  Encoder e(&out);
  e.PutU8(kCommitMagic);
  e.PutU8(1);  // fragment follows; the committed tag is the fragment's
  PutFragment(e, frag);
  return out;
}

Expected<CodedDelta> DecodeCodedDelta(std::string_view bytes) {
  Decoder d(bytes);
  auto magic = d.GetU8();
  if (!magic) return magic.status();
  CodedDelta delta;
  if (*magic == kPutMagic) {
    delta.kind = CodedDelta::Kind::kPut;
    auto f = GetFragment(d);
    if (!f) return f.status();
    delta.frag = std::move(*f);
  } else if (*magic == kCommitMagic) {
    delta.kind = CodedDelta::Kind::kCommit;
    auto has_frag = d.GetU8();
    if (!has_frag) return has_frag.status();
    if (*has_frag == 0) {
      auto t = GetTag(d);
      if (!t) return t.status();
      delta.tag = *t;
    } else if (*has_frag == 1) {
      auto f = GetFragment(d);
      if (!f) return f.status();
      delta.tag = f->tag;
      delta.frag = std::move(*f);
      delta.has_frag = true;
    } else {
      return Status::Invalid("coded delta: bad commit flag");
    }
  } else {
    return Status::Invalid("coded delta: bad magic");
  }
  if (!d.AtEnd()) return Status::Invalid("coded delta: trailing bytes");
  return delta;
}

Value MergeCodedCell(const Value& current, std::string_view delta) {
  // Total on corrupt input: a cell that no longer decodes (disk
  // corruption) resets to empty rather than wedging the register forever;
  // a delta that does not decode is a no-op.
  CodedCell cell;
  if (auto cur = DecodeCodedCell(current); cur.ok()) cell = std::move(*cur);
  auto d = DecodeCodedDelta(delta);
  if (!d.ok()) return current;
  switch (d->kind) {
    case CodedDelta::Kind::kPut:
      if (d->frag.tag >= cell.committed) {
        UpsertFragment(cell.frags, std::move(d->frag));
      }
      break;
    case CodedDelta::Kind::kCommit:
      cell.committed = std::max(cell.committed, d->tag);
      // Re-install the carried fragment: the commit itself guarantees
      // its tag is decodable at this disk even when the pending cap
      // evicted the Put's fragment before the commit arrived — the
      // tag-completeness invariant's one fragment-restoring rule.
      if (d->has_frag && d->frag.tag >= cell.committed) {
        UpsertFragment(cell.frags, std::move(d->frag));
      }
      break;
  }
  Normalize(cell);
  return EncodeCodedCell(cell);
}

}  // namespace nadreg
