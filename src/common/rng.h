/// \file
/// Seeded, reproducible random number generation (xoshiro256** + splitmix64).
/// Every randomized component in nadreg takes an explicit seed so that test
/// failures and harness runs are replayable.
#pragma once

#include <array>
#include <cstdint>

namespace nadreg {

/// splitmix64: used to expand a single seed into generator state.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality, tiny-state PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded sampling (bias negligible for
    // simulation purposes; rejection loop keeps it exact).
    for (;;) {
      std::uint64_t x = (*this)();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (0ULL - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Bernoulli trial with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) { return Below(den) < num; }

  /// Derives an independent child generator (for per-thread streams).
  Rng Fork() { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nadreg
