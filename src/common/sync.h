/// \file
/// Annotated synchronization primitives: the only mutex/condvar types the
/// repo uses outside this directory (enforced by scripts/lint_invariants.py).
///
/// nadreg::Mutex, MutexLock and CondVar are thin wrappers over the std
/// primitives carrying Clang Thread Safety Analysis attributes (see
/// common/thread_annotations.h), so the locking discipline — which fields
/// a mutex guards, which functions require it, the stripe→journal lock
/// order — is machine-checked by a Clang build with
/// -DNADREG_THREAD_SAFETY=ON instead of living in comments and TSan runs.
///
/// The wrappers add no state and no behaviour: Mutex is exactly
/// std::mutex, MutexLock is exactly std::lock_guard, CondVar waits are
/// exactly std::condition_variable waits against the wrapped mutex.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace nadreg {

/// Annotated std::mutex. Use MutexLock for scoped acquisition; call
/// Lock()/Unlock() directly only where a scope cannot express the
/// critical section (e.g. a service loop that drops the lock to run a
/// completion handler).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (not the runtime) that this thread holds the
  /// mutex — for callbacks invoked from a locked context it cannot see.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped acquisition (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a nadreg::Mutex. Every wait requires the
/// mutex held on entry and holds it again on return, which is what the
/// REQUIRES annotation promises to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Plain timed wait: returns false when the deadline passed before a
  /// notification arrived (spurious wake-ups also return true — callers
  /// re-check their predicate in a loop, as BlockedQuorumWait does).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool ok = cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    return ok;
  }

  /// Returns pred() at wake-up (false = timed out with pred still false).
  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool ok = cv_.wait_until(lock, deadline, std::move(pred));
    lock.release();
    return ok;
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool ok = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return ok;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace nadreg
