/// \file
/// Process-wide counters for the NAD RPC hot path: payload bytes moved by
/// user-space copies between buffers (encode/decode/staging copies, not
/// the kernel's socket copy). The counters exist so bench/micro_hotpath
/// can report bytes-copied/op before and after the zero-copy framing work
/// with one definition of "copy"; they are relaxed atomics and cost one
/// uncontended fetch_add per counted site.
///
/// Counted sites (the definition the benchmarks rely on) — what SURVIVES
/// the zero-copy framing work, i.e. every remaining user-space copy:
///   * client: materializing a decoded read-response value for its
///     handler (the one copy the handler-owns-its-Value contract needs);
///   * server: copying a stored value into the response arena under the
///     stripe lock (reads), assigning a received value into the
///     register's string (writes);
///   * both: RxBuffer compaction/growth moving unconsumed bytes, and the
///     cold AppendFrame/PutBytesCopy staging paths.
/// The pre-change pipeline additionally counted: staging a write value,
/// framing bytes into the wire queue, appending received bytes to the rx
/// buffer, and decode materialization — all gone, which is what
/// bytes-copied/op in BENCH_hotpath.json measures.
#pragma once

#include <atomic>
#include <cstdint>

namespace nadreg::hotpath {

inline std::atomic<std::uint64_t> g_bytes_copied{0};

inline void CountCopy(std::size_t n) {
  g_bytes_copied.fetch_add(n, std::memory_order_relaxed);
}

inline std::uint64_t BytesCopied() {
  return g_bytes_copied.load(std::memory_order_relaxed);
}

}  // namespace nadreg::hotpath
