/// \file
/// Binary serialization for the records the emulation algorithms store in
/// disk blocks, and for the TCP NAD wire protocol.
///
/// Encoding is little-endian fixed width with length-prefixed byte strings.
/// All decode paths are total: they return Expected<> and never read past
/// the end of the buffer (disk blocks and network bytes are untrusted).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nadreg {

/// Appends primitive values to a byte buffer.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  /// Length-prefixed byte string (u32 length).
  void PutBytes(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Reads primitive values from a byte buffer; all reads are bounds-checked.
class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  bool AtEnd() const { return pos_ == in_.size(); }
  std::size_t Remaining() const { return in_.size() - pos_; }

  Expected<std::uint8_t> GetU8() {
    if (Remaining() < 1) return Status::Invalid("decode: truncated u8");
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  Expected<std::uint32_t> GetU32() {
    if (Remaining() < 4) return Status::Invalid("decode: truncated u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }
  Expected<std::uint64_t> GetU64() {
    if (Remaining() < 8) return Status::Invalid("decode: truncated u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }
  Expected<std::string> GetBytes() {
    auto len = GetU32();
    if (!len) return len.status();
    if (Remaining() < *len) return Status::Invalid("decode: truncated bytes");
    std::string s(in_.substr(pos_, *len));
    pos_ += *len;
    return s;
  }
  /// Zero-copy variant of GetBytes: the returned view aliases the
  /// decoder's input buffer and is valid only as long as that buffer
  /// lives unmodified.
  Expected<std::string_view> GetBytesView() {
    auto len = GetU32();
    if (!len) return len.status();
    if (Remaining() < *len) return Status::Invalid("decode: truncated bytes");
    std::string_view s = in_.substr(pos_, *len);
    pos_ += *len;
    return s;
  }

 private:
  std::string_view in_;
  std::size_t pos_ = 0;
};

/// (writer, sequence number, payload) — the record written to base
/// registers by the SWSR/SWMR/MWSR emulations (Sections 3.2, 4.2, Fig. 2).
struct TaggedValue {
  ProcessId writer = kNoProcess;
  SeqNum seq = 0;  // 0 means "initial value, never written"
  std::string payload;

  friend bool operator==(const TaggedValue&, const TaggedValue&) = default;

  /// True if this record is fresher than `other` for the *same* writer.
  bool FresherThan(const TaggedValue& other) const { return seq > other.seq; }
};

std::string EncodeTaggedValue(const TaggedValue& tv);
/// Decodes a register value. The empty string (register initial value)
/// decodes to the default TaggedValue (seq 0).
[[nodiscard]] Expected<TaggedValue> DecodeTaggedValue(std::string_view bytes);

/// The record the Fig. 3 MWMR construction stores in the one-shot register
/// v[p]: the written value plus the name-snapshot taken by the WRITE.
struct SnapRecord {
  std::string value;
  std::vector<Name> snapshot;  // kept sorted ascending

  friend bool operator==(const SnapRecord&, const SnapRecord&) = default;
};

std::string EncodeSnapRecord(const SnapRecord& rec);
[[nodiscard]] Expected<SnapRecord> DecodeSnapRecord(std::string_view bytes);

std::string EncodeName(const Name& n);
[[nodiscard]] Expected<Name> DecodeName(std::string_view bytes);

/// A plain set of names (kept sorted ascending) — the payload of a
/// published snapshot view.
std::string EncodeNameSet(const std::vector<Name>& names);
[[nodiscard]] Expected<std::vector<Name>> DecodeNameSet(std::string_view bytes);

}  // namespace nadreg
