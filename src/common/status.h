/// \file
/// Lightweight status/error type for expected failures across module APIs.
/// Exceptions are reserved for programming errors (precondition violations).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nadreg {

enum class StatusCode {
  kOk = 0,
  kTimeout,        // operation did not complete within the caller's budget
  kCrashed,        // target register/disk is known to have crashed
  kInvalid,        // malformed input (e.g. bad wire message, bad decode)
  kUnavailable,    // transport failure (socket closed, connect refused)
  kAlreadyWritten  // one-shot register written twice
};

/// Result of an operation that can fail in expected ways. [[nodiscard]]
/// at class level: every function returning a Status by value must have
/// its result examined (dropping one silently swallows a failure).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Timeout(std::string m = "timeout") {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Crashed(std::string m = "crashed") {
    return Status(StatusCode::kCrashed, std::move(m));
  }
  static Status Invalid(std::string m) {
    return Status(StatusCode::kInvalid, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status AlreadyWritten(std::string m = "one-shot register already written") {
    return Status(StatusCode::kAlreadyWritten, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_.empty() ? "error" : message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or a Status explaining why there is none. [[nodiscard]] like
/// Status: an ignored Expected is an ignored failure.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Expected(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const Status& status() const { return status_; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace nadreg
