/// \file
/// The per-disk state of the erasure-coded MWMR emulation: a *coded cell*
/// holding the highest tag known committed at this disk plus a small set of
/// tagged fragments, and the join (merge) every backend applies to it.
///
/// A replicated base register stores one full value per disk; a coded cell
/// stores one *fragment* (1/k of the value, plus parity headroom) per disk,
/// following "Storage-Efficient Shared Memory Emulation" (Zorgui et al.)
/// against the Cadambe–Wang–Lynch storage lower bounds. Because a fragment
/// alone is useless, a coded write must never overwrite the previous
/// fragment before the new write is recoverable elsewhere — so the cell is
/// a join-semilattice, not a last-writer-wins register:
///
///   committed  : highest CodedTag this disk has seen a Commit for
///   frags      : fragments with tag >= committed (one per tag), capped at
///                kMaxPendingTags uncommitted entries (evict-lowest)
///
/// MergeCodedCell(current, delta) is commutative, idempotent and monotone
/// in each argument, so replayed or reordered deltas (client retransmits
/// after reconnect, chained queue slots) are harmless. The merge is total:
/// undecodable current state resets to the empty cell, an undecodable
/// delta leaves the cell unchanged.
///
/// Tag-completeness invariant (DESIGN.md §16): every Commit delta carries
/// the destination disk's own fragment, so a disk whose committed tag is t
/// always holds its fragment of t — even if the pending-tag cap evicted
/// the earlier Put's fragment, the commit re-installs it. A disk prunes
/// tag t's fragment only when some higher tag commits at that disk — at
/// which point the disk reports committed > t and holds the higher tag's
/// fragment instead. Hence once Commit(t) reaches a write quorum, every
/// read quorum intersects it in >= k disks (n >= 2f+k) that hold either
/// tag t's fragment or a higher committed tag's.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nadreg {

/// Totally ordered write tag: (sequence, writer id), lexicographic.
/// seq 0 is the initial value — no write ever carries it.
struct CodedTag {
  SeqNum seq = 0;
  ProcessId writer = kNoProcess;

  friend bool operator==(const CodedTag&, const CodedTag&) = default;
  friend auto operator<=>(const CodedTag& a, const CodedTag& b) {
    if (auto c = a.seq <=> b.seq; c != 0) return c;
    return a.writer <=> b.writer;
  }
};

/// One tagged fragment as stored in a cell or carried by a Put delta.
/// `crc` covers `bytes` only — a reader drops corrupted fragments instead
/// of feeding them to the decoder (RS with exactly k inputs cannot detect
/// corruption by itself).
struct CodedFragment {
  CodedTag tag;
  std::uint8_t index = 0;  // fragment index in [0, n)
  std::uint8_t n = 0;
  std::uint8_t k = 0;
  std::uint32_t value_size = 0;  // pre-encoding value length, for trimming
  std::uint32_t crc = 0;
  std::string bytes;

  friend bool operator==(const CodedFragment&, const CodedFragment&) = default;
};

/// The full per-disk cell: join of every delta merged so far.
struct CodedCell {
  /// Uncommitted tags a cell retains beyond `committed` (bounded storage;
  /// the evict-lowest policy keeps the freshest in-flight writes).
  static constexpr std::size_t kMaxPendingTags = 8;

  CodedTag committed;
  std::vector<CodedFragment> frags;  // sorted by tag ascending, unique tags

  friend bool operator==(const CodedCell&, const CodedCell&) = default;
};

/// A delta shipped to a disk by the coded write/read protocol.
struct CodedDelta {
  enum class Kind : std::uint8_t { kPut = 1, kCommit = 2 };
  Kind kind = Kind::kPut;
  CodedFragment frag;     // kPut always; kCommit when has_frag
  CodedTag tag;           // kCommit only (== frag.tag when has_frag)
  bool has_frag = false;  // kCommit: carries the destination's fragment
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
std::uint32_t Crc32(std::string_view bytes);

std::string EncodeCodedCell(const CodedCell& cell);
/// The empty string (register initial value) decodes to the empty cell.
[[nodiscard]] Expected<CodedCell> DecodeCodedCell(std::string_view bytes);

std::string EncodeCodedPut(const CodedFragment& frag);
/// Tag-only commit: raises the committed tag without touching fragments.
/// The protocol never sends these (its commits always carry a fragment,
/// see below) — kept for tests and as the decode target of short deltas.
std::string EncodeCodedCommit(const CodedTag& tag);
/// Commit carrying the destination disk's fragment of `frag.tag`. The
/// merge re-installs the fragment alongside raising the committed tag, so
/// a commit makes its own tag decodable at that disk even if the Put's
/// fragment was evicted by the pending cap — and a reader's help-commit
/// of an in-flight tag re-propagates the fragments it decoded from.
std::string EncodeCodedCommit(const CodedFragment& frag);
[[nodiscard]] Expected<CodedDelta> DecodeCodedDelta(std::string_view bytes);

/// The cell join applied at a disk's linearization point:
/// decode(current) ⊔ delta, re-encoded. Total on corrupt input (see the
/// file comment); the only mutation path for coded cells on every backend.
Value MergeCodedCell(const Value& current, std::string_view delta);

}  // namespace nadreg
