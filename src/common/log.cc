#include "common/log.h"

#include <cstdio>

namespace nadreg {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

}  // namespace nadreg
