/// \file
/// Core identifier and value types shared by every nadreg subsystem.
///
/// The paper's model (Section 2): processes have unique ids but no bound on
/// how many exist (uniformity); network-attached disks are arrays of blocks;
/// each block is modelled as a fail-prone MWMR atomic register holding an
/// uninterpreted value. We model block contents as raw bytes, exactly like a
/// disk block; algorithm-level records are serialized via common/codec.h.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace nadreg {

/// Unique process identifier. The model is uniform: algorithms must never
/// assume a bound on the number of distinct ProcessIds they will observe.
using ProcessId = std::uint64_t;

/// Identifier of a disk (a NAD). A disk is an array of blocks/registers.
using DiskId = std::uint32_t;

/// Block index within one disk. Disks expose an unbounded, lazily
/// materialized block space (the paper's "infinitely many registers per
/// disk"); blocks come into existence holding the initial value.
using BlockId = std::uint64_t;

/// Globally addressable base register: one block of one disk.
struct RegisterId {
  DiskId disk = 0;
  BlockId block = 0;

  friend auto operator<=>(const RegisterId&, const RegisterId&) = default;
};

/// Contents of a base register / disk block: uninterpreted bytes.
/// The empty string is the conventional initial value of every register.
using Value = std::string;

/// Monotone sequence number used by the emulation algorithms.
using SeqNum = std::uint64_t;

/// A "name" in the infinite-arrival model (Section 6): each process reserves
/// infinitely many names, one per operation, encoded as (pid, index).
struct Name {
  ProcessId pid = 0;
  std::uint64_t index = 0;

  friend auto operator<=>(const Name&, const Name&) = default;
};

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

}  // namespace nadreg

template <>
struct std::hash<nadreg::RegisterId> {
  std::size_t operator()(const nadreg::RegisterId& r) const noexcept {
    // Mix disk and block; disks are few, blocks may be dense from 0.
    std::uint64_t x = (static_cast<std::uint64_t>(r.disk) << 48) ^ r.block;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<nadreg::Name> {
  std::size_t operator()(const nadreg::Name& n) const noexcept {
    std::uint64_t x = n.pid * 0x9e3779b97f4a7c15ULL + n.index;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};
