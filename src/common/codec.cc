#include "common/codec.h"

namespace nadreg {

std::string EncodeTaggedValue(const TaggedValue& tv) {
  std::string out;
  Encoder e(&out);
  e.PutU64(tv.writer);
  e.PutU64(tv.seq);
  e.PutBytes(tv.payload);
  return out;
}

Expected<TaggedValue> DecodeTaggedValue(std::string_view bytes) {
  if (bytes.empty()) return TaggedValue{};  // register initial value
  Decoder d(bytes);
  TaggedValue tv;
  auto writer = d.GetU64();
  if (!writer) return writer.status();
  auto seq = d.GetU64();
  if (!seq) return seq.status();
  auto payload = d.GetBytes();
  if (!payload) return payload.status();
  if (!d.AtEnd()) return Status::Invalid("TaggedValue: trailing bytes");
  tv.writer = *writer;
  tv.seq = *seq;
  tv.payload = std::move(*payload);
  return tv;
}

std::string EncodeName(const Name& n) {
  std::string out;
  Encoder e(&out);
  e.PutU64(n.pid);
  e.PutU64(n.index);
  return out;
}

Expected<Name> DecodeName(std::string_view bytes) {
  Decoder d(bytes);
  auto pid = d.GetU64();
  if (!pid) return pid.status();
  auto index = d.GetU64();
  if (!index) return index.status();
  if (!d.AtEnd()) return Status::Invalid("Name: trailing bytes");
  return Name{*pid, *index};
}

std::string EncodeNameSet(const std::vector<Name>& names) {
  std::string out;
  Encoder e(&out);
  e.PutU32(static_cast<std::uint32_t>(names.size()));
  for (const Name& n : names) {
    e.PutU64(n.pid);
    e.PutU64(n.index);
  }
  return out;
}

Expected<std::vector<Name>> DecodeNameSet(std::string_view bytes) {
  Decoder d(bytes);
  auto count = d.GetU32();
  if (!count) return count.status();
  // Each name occupies 16 bytes; reject counts the buffer cannot hold
  // before reserving (untrusted input must not drive allocation).
  if (*count > d.Remaining() / 16) {
    return Status::Invalid("NameSet: count exceeds buffer");
  }
  std::vector<Name> names;
  names.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto pid = d.GetU64();
    if (!pid) return pid.status();
    auto index = d.GetU64();
    if (!index) return index.status();
    names.push_back(Name{*pid, *index});
  }
  if (!d.AtEnd()) return Status::Invalid("NameSet: trailing bytes");
  return names;
}

std::string EncodeSnapRecord(const SnapRecord& rec) {
  std::string out;
  Encoder e(&out);
  e.PutBytes(rec.value);
  e.PutU32(static_cast<std::uint32_t>(rec.snapshot.size()));
  for (const Name& n : rec.snapshot) {
    e.PutU64(n.pid);
    e.PutU64(n.index);
  }
  return out;
}

Expected<SnapRecord> DecodeSnapRecord(std::string_view bytes) {
  Decoder d(bytes);
  SnapRecord rec;
  auto value = d.GetBytes();
  if (!value) return value.status();
  rec.value = std::move(*value);
  auto count = d.GetU32();
  if (!count) return count.status();
  if (*count > d.Remaining() / 16) {
    return Status::Invalid("SnapRecord: count exceeds buffer");
  }
  rec.snapshot.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto pid = d.GetU64();
    if (!pid) return pid.status();
    auto index = d.GetU64();
    if (!index) return index.status();
    rec.snapshot.push_back(Name{*pid, *index});
  }
  if (!d.AtEnd()) return Status::Invalid("SnapRecord: trailing bytes");
  return rec;
}

}  // namespace nadreg
