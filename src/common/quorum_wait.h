/// \file
/// BlockedQuorumWait: the one blocking pattern every quorum wait in the
/// tree uses, written once so the scheduler-hook protocol
/// (BaseRegisterClient::NoteBlocked / NoteRunnable / Abandoned) cannot be
/// half-implemented at a call site.
///
/// Protocol, per iteration while the predicate is false:
///
///   1. If the client abandoned the run, fail the wait (return false).
///   2. Register as blocked with the current `remaining()` count and the
///      wake callback. A false return means the client abandoned between
///      steps 1 and 2 — fail the wait.
///   3. Block on `cv` (plain, non-predicated wait: EVERY notification
///      returns to the loop so the registration is refreshed with an
///      up-to-date remaining count).
///   4. Deregister (NoteRunnable) and re-check.
///
/// The wake callback a caller passes must notify `cv` while holding `mu`:
///
///   std::function<void()> wake = [st] { MutexLock l(st->mu); st->cv.NotifyAll(); };
///
/// Locking before notifying is what makes the hand-off race-free — a wake
/// fired between NoteBlocked and the cv wait blocks on `mu` until the
/// waiter is inside the wait and cannot be lost. The closure must own the
/// waited-on state (shared_ptr), because a scheduler may fire it after the
/// waiting frame already returned.
#pragma once

#include <functional>

#include "common/base_register.h"
#include "common/op_options.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace nadreg {

/// Blocks process `p` until `pred()` holds, keeping `client` informed.
///
/// `mu` must be held on entry and is held again on return; `pred` and
/// `remaining` are evaluated under `mu`. `remaining()` must return how
/// many more *single completion deliveries* for `p` could still be needed
/// before `pred()` can turn true — a conservative lower bound: return 1
/// whenever one delivery might suffice (the deterministic scheduler uses
/// `remaining > 1` as licence to commute deliveries; see
/// sim/explorer.cc's independence relation).
///
/// Returns true when `pred()` holds; false when the wait is hopeless —
/// the deadline expired or the client abandoned the run.
template <typename Remaining, typename Pred>
bool BlockedQuorumWait(BaseRegisterClient& client, ProcessId p, Mutex& mu,
                       CondVar& cv, const std::function<void()>& wake,
                       OpDeadline deadline, Remaining remaining, Pred pred)
    REQUIRES(mu) {
  for (;;) {
    if (pred()) return true;
    if (client.Abandoned()) return false;
    if (!client.NoteBlocked(p, remaining(), wake)) return false;
    bool timed_out = false;
    if (deadline) {
      timed_out = !cv.WaitUntil(mu, *deadline);
    } else {
      cv.Wait(mu);
    }
    client.NoteRunnable(p);
    if (timed_out) return pred();
  }
}

}  // namespace nadreg
