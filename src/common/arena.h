/// \file
/// Bump-pointer arena with slab reuse: the allocator behind the NAD hot
/// path's transient encode/decode state (frame headers, batch sub-views).
///
/// An Arena hands out raw bytes from a chain of slabs by bumping an
/// offset; Reset() rewinds the offset but RETAINS every slab, so a
/// steady-state request cycle (frame → send → Reset, or frame → decode →
/// Reset) performs zero heap allocations after warm-up. Allocation is a
/// pointer bump — no per-object headers, no free lists, no locks.
///
/// Ownership and lifetime rules (DESIGN.md §14):
///  * Single-owner: an Arena belongs to exactly one connection and is
///    touched only by that connection's owning thread (the client's
///    event loop / the server's per-connection serve thread) — the same
///    single-writer rule as the rest of the connection state. There is
///    deliberately no mutex; a debug build asserts the rule.
///  * Everything allocated from an Arena dies at the next Reset(). A
///    pointer or string_view into an arena must not outlive the reset
///    point of its owning cycle (wire-drained for a client's tx arena,
///    end-of-frame for an rx arena, end-of-request for the server's).
///  * Objects placed in an arena are never destructed — AllocArray
///    requires trivially destructible element types.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#ifndef NDEBUG
#include <thread>
#endif

namespace nadreg {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;
  /// Reset() releases dedicated one-off slabs larger than this (or than
  /// the configured slab size, whichever is bigger) instead of retaining
  /// them: a single outlier allocation — e.g. the sub-view array of a
  /// hostile maximum-count batch frame — must not inflate the arena's
  /// footprint forever. Smaller oversized slabs stay retained, so a
  /// workload of legitimately large values keeps its warm memory.
  static constexpr std::size_t kMaxRetainedSlabBytes = 1024 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `n` bytes aligned to `align` (a power of two). The bytes are
  /// uninitialized and valid until the next Reset(). n == 0 is allowed
  /// and returns a (non-null) pointer into the current slab.
  char* Alloc(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    AssertOwner();
    assert((align & (align - 1)) == 0 && "alignment must be a power of two");
    while (slab_ < slabs_.size()) {
      Slab& s = slabs_[slab_];
      const std::size_t off = (offset_ + (align - 1)) & ~(align - 1);
      if (off + n <= s.size) {
        offset_ = off + n;
        bytes_used_ += n;
        return s.data.get() + off;
      }
      ++slab_;
      offset_ = 0;
    }
    // No retained slab fits: grow. Oversized requests get a dedicated
    // slab of exactly their size so one huge frame does not inflate the
    // steady-state footprint of every later cycle.
    const std::size_t size = n + align > slab_bytes_ ? n + align : slab_bytes_;
    slabs_.push_back(Slab{std::make_unique<char[]>(size), size});
    slab_ = slabs_.size() - 1;
    Slab& s = slabs_[slab_];
    const std::size_t base = reinterpret_cast<std::uintptr_t>(s.data.get());
    const std::size_t off = ((base + align - 1) & ~(align - 1)) - base;
    offset_ = off + n;
    bytes_used_ += n;
    return s.data.get() + off;
  }

  /// Returns `count` default-constructed `T`s. T must be trivially
  /// destructible — arena objects are never destructed (see file comment).
  template <typename T>
  T* AllocArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destructed");
    char* raw = Alloc(count * sizeof(T), alignof(T));
    T* arr = reinterpret_cast<T*>(raw);
    for (std::size_t i = 0; i < count; ++i) new (arr + i) T();
    return arr;
  }

  /// Copies `n` bytes into the arena and returns the stable copy.
  char* Copy(const char* src, std::size_t n) {
    char* p = Alloc(n, 1);
    std::memcpy(p, src, n);
    return p;
  }

  /// Rewinds to empty, RETAINING every steady-state slab (the whole
  /// point: the next cycle allocates from warm memory) but releasing
  /// one-off slabs beyond kMaxRetainedSlabBytes (see its comment).
  /// Invalidates everything Alloc'd.
  void Reset() {
    AssertOwner();
    const std::size_t cap = std::max(slab_bytes_, kMaxRetainedSlabBytes);
    std::erase_if(slabs_, [cap](const Slab& s) { return s.size > cap; });
    slab_ = 0;
    offset_ = 0;
    if (bytes_used_ > high_water_) high_water_ = bytes_used_;
    bytes_used_ = 0;
  }

  /// Bytes handed out since the last Reset (excludes alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }
  /// Largest bytes_used() observed at a Reset — sizes the retained slabs.
  std::size_t high_water() const { return high_water_; }
  std::size_t slab_count() const { return slabs_.size(); }
  /// Total bytes held across all retained slabs.
  std::size_t retained_bytes() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }

 private:
  struct Slab {
    std::unique_ptr<char[]> data;
    std::size_t size;
  };

  /// Debug check of the single-owner rule: the first Alloc/Reset pins the
  /// owning thread; every later one must come from it.
  void AssertOwner() {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    if (owner_ == std::thread::id{}) owner_ = self;
    assert(owner_ == self && "arena touched off its owning thread");
#endif
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t slab_ = 0;    // slab currently bumping
  std::size_t offset_ = 0;  // bump offset within slabs_[slab_]
  std::size_t bytes_used_ = 0;
  std::size_t high_water_ = 0;
#ifndef NDEBUG
  std::thread::id owner_{};
#endif
};

}  // namespace nadreg
