/// \file
/// The asynchronous fail-prone base-register interface — the paper's model of
/// a network-attached disk (Section 2).
///
/// Base registers are atomic MWMR registers that may crash (unresponsive
/// mode, Jayanti-Chandra-Toueg). Access is *nonblocking*: IssueRead /
/// IssueWrite return immediately and the completion handler runs later — or
/// never, if the register has crashed. An issued write whose handler has not
/// yet run is a *pending write* (Figure 1): it may take effect arbitrarily
/// far in the future, possibly after the issuing OPERATION completed.
///
/// Linearization convention (Section 4.1 proof): a base-register operation
/// takes effect exactly when it responds. Backends apply writes at response
/// delivery time.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.h"

namespace nadreg {

/// Completion handler for a read: receives the value read.
/// May be invoked from an arbitrary internal thread; must not block for
/// long, but may issue further base-register operations.
using ReadHandler = std::function<void(Value)>;

/// Completion handler for a write.
using WriteHandler = std::function<void()>;

/// Asynchronous access to a pool of fail-prone base registers.
///
/// Uniformity contract: implementations never require the caller to declare
/// how many processes exist. Any ProcessId may issue operations at any time
/// (infinite-arrival model). Registers are lazily materialized: every
/// RegisterId initially holds the empty Value.
class BaseRegisterClient {
 public:
  virtual ~BaseRegisterClient() = default;

  /// Issues a read of register `r` on behalf of process `p`.
  /// `done` runs when (if ever) the register responds.
  virtual void IssueRead(ProcessId p, RegisterId r, ReadHandler done) = 0;

  /// Issues a write of `v` to register `r` on behalf of process `p`.
  /// `done` runs when (if ever) the register responds; the write takes
  /// effect at that moment.
  virtual void IssueWrite(ProcessId p, RegisterId r, Value v,
                          WriteHandler done) = 0;

  /// One read of a quorum phase, for the vectored issue path.
  struct ReadOp {
    RegisterId reg;
    ReadHandler done;
  };
  /// One write of a quorum phase, for the vectored issue path.
  struct WriteOp {
    RegisterId reg;
    Value value;
    WriteHandler done;
  };

  /// Issues many independent reads at once — a quorum phase's whole
  /// fan-out in one call. Semantically identical to calling IssueRead per
  /// op (each op completes — or silently never does — on its own), but a
  /// networked backend may vector everything bound for the same disk into
  /// one batched round trip. The default forwards op by op.
  virtual void IssueReads(ProcessId p, std::vector<ReadOp> ops) {
    for (ReadOp& op : ops) IssueRead(p, op.reg, std::move(op.done));
  }

  /// Issues many independent writes at once; see IssueReads.
  virtual void IssueWrites(ProcessId p, std::vector<WriteOp> ops) {
    for (WriteOp& op : ops) IssueWrite(p, op.reg, std::move(op.value), std::move(op.done));
  }

  // --- Coded-cell merge (optional capability) -----------------------------
  // The erasure-coded emulation needs one operation the paper's plain NAD
  // does not have: apply MergeCodedCell(current, delta) at the register's
  // linearization point. A fixed idempotent join is strictly weaker than
  // the active disk's arbitrary read-modify-write (it has no consensus
  // power — the merge outcome never depends on arrival order), but
  // strictly stronger than plain read/write, so it gets its own opt-in
  // surface here instead of riding ActiveDiskClient: backends advertise it
  // via SupportsMerge() and core::CodedMwmr refuses substrates without it.

  /// True when this backend applies IssueMerge via MergeCodedCell.
  virtual bool SupportsMerge() const { return false; }

  /// Issues a coded-cell merge of `delta` into register `r`. The merged
  /// value — MergeCodedCell(current cell, delta) — takes effect when the
  /// register responds, exactly like a write. Idempotent and commutative
  /// by construction, so transports may retransmit it freely. Backends
  /// that return false from SupportsMerge() complete the op as a no-op
  /// (default); callers must check SupportsMerge() first.
  virtual void IssueMerge(ProcessId p, RegisterId r, Value delta,
                          WriteHandler done) {
    (void)p;
    (void)r;
    (void)delta;
    if (done) done();
  }

  /// Issues many independent merges at once; see IssueReads. Merge deltas
  /// reuse the WriteOp shape (register, payload, completion).
  virtual void IssueMerges(ProcessId p, std::vector<WriteOp> ops) {
    for (WriteOp& op : ops) IssueMerge(p, op.reg, std::move(op.value), std::move(op.done));
  }

  // --- Scheduler hooks ----------------------------------------------------
  // A deterministic scheduler (sim::DetFarm) decides when to deliver
  // completions, so it must know when every workload thread is parked in a
  // quorum wait (quiescence) and when a run has been abandoned. Quorum
  // engines report their blocking through these hooks (see
  // common/quorum_wait.h for the canonical wait loop). Real backends keep
  // the defaults: no tracking, never abandoned.

  /// Announces that process `p` is about to block until `remaining` more of
  /// its completions arrive. `wake` must make the blocked thread re-check
  /// its predicate (notify its condition variable *while holding the
  /// waiter's mutex*, so a wake racing with wait entry cannot be lost); the
  /// scheduler may invoke it from any thread, possibly after the wait
  /// already returned, so the closure must keep its state alive
  /// (shared_ptr). Returns false when the client refuses the registration
  /// (run abandoned): the caller must fail its wait instead of blocking.
  virtual bool NoteBlocked(ProcessId p, std::size_t remaining,
                           std::function<void()> wake) {
    (void)p;
    (void)remaining;
    (void)wake;
    return true;
  }

  /// Announces that process `p` returned from its blocked wait (pairs with
  /// every NoteBlocked that returned true).
  virtual void NoteRunnable(ProcessId p) { (void)p; }

  /// Announces that a completion handler belonging to process `p` finished
  /// running — the waiter registered under `p`, if any, may now be
  /// wakeable even if its `wake` was never fired by the scheduler.
  virtual void NoteCompletion(ProcessId p) { (void)p; }

  /// True when the backend has abandoned the run: pending operations will
  /// never be delivered, so quorum waits must fail fast instead of
  /// blocking forever. Called with arbitrary locks held — implementations
  /// must not take locks here.
  virtual bool Abandoned() const { return false; }

  /// Transport-level crash suspicion. True when the backend has strong
  /// evidence the disk is unreachable (e.g. the TCP client's per-disk
  /// circuit breaker is open after repeated reconnect failures or
  /// operation expiries). Advisory and revisable — suspicion may clear
  /// when the disk heals. The quorum engine (core::RegisterSet) uses it
  /// to fail fast: an operation issued to a suspected disk would never
  /// complete anyway (crashed-register semantics), so it is not issued.
  /// The default — and every simulated backend — suspects nothing: in the
  /// paper's model a crashed register is indistinguishable from a slow
  /// one, and only a real transport gets to cheat with connection errors.
  virtual bool IsSuspectedCrashed(DiskId d) const {
    (void)d;
    return false;
  }
};

/// Operation counters, used by the harness to measure base-register work
/// per emulated OPERATION (e.g. Fig. 3's step-complexity growth).
struct OpStats {
  std::uint64_t reads_issued = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;

  std::uint64_t TotalIssued() const { return reads_issued + writes_issued; }
};

}  // namespace nadreg
