// Command-line client for real NAD servers: raw block access plus an
// emulated fault-tolerant register spanning one server per disk.
//
//   # raw block read/write against servers on ports p0,p1,p2 (disk i -> pi):
//   $ ./examples/nad_client --ports 7001,7002,7003 write 0 5 "hello"
//   $ ./examples/nad_client --ports 7001,7002,7003 read 1 5
//
//   # the same with full endpoints (disks on other hosts):
//   $ ./examples/nad_client --disks a:7001,b:7001,c:7001 read 1 5
//
//   # an atomic SWMR register emulated across ALL the listed disks
//   # (tolerates (n-1)/2 of them being down):
//   $ ./examples/nad_client --ports 7001,7002,7003 reg-write "value"
//   $ ./examples/nad_client --ports 7001,7002,7003 reg-read
//
//   # one disk daemon's metrics (request counts, service latency):
//   $ ./examples/nad_client --ports 7001,7002,7003 stats 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/swmr_atomic.h"
#include "nad/client.h"

namespace {

/// Splits "a,b,c" and parses each piece as [host:]port.
std::vector<nadreg::nad::Endpoint> ParseEndpoints(const std::string& csv) {
  std::vector<nadreg::nad::Endpoint> eps;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    auto ep = nadreg::nad::ParseEndpoint(csv.substr(pos, comma - pos));
    if (!ep) {
      std::fprintf(stderr, "bad endpoint '%s': %s\n",
                   csv.substr(pos, comma - pos).c_str(),
                   ep.status().ToString().c_str());
      return {};
    }
    eps.push_back(std::move(*ep));
    pos = comma + 1;
  }
  return eps;
}

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s (--ports P0,P1,... | --disks H0:P0,H1:P1,...) <command>\n"
               "  write <disk> <block> <value>   raw block write\n"
               "  read <disk> <block>            raw block read\n"
               "  reg-write <value>              emulated atomic register write\n"
               "  reg-read                       emulated atomic register read\n"
               "  stats <disk>                   server metrics (STATS opcode)\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nadreg;
  using namespace std::chrono_literals;

  std::vector<nad::Endpoint> eps;
  int argi = 1;
  if (argi + 1 < argc && (std::strcmp(argv[argi], "--ports") == 0 ||
                          std::strcmp(argv[argi], "--disks") == 0)) {
    eps = ParseEndpoints(argv[argi + 1]);
    argi += 2;
  }
  if (eps.empty() || argi >= argc) return Usage(argv[0]);

  std::map<DiskId, nad::NadClient::Endpoint> endpoints;
  for (std::size_t d = 0; d < eps.size(); ++d) {
    endpoints[static_cast<DiskId>(d)] = eps[d];
  }
  auto client = nad::NadClient::Connect(endpoints);
  if (!client) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  const std::string cmd = argv[argi++];
  if (cmd == "write" && argi + 2 < argc) {
    RegisterId r{static_cast<DiskId>(std::atoi(argv[argi])),
                 static_cast<BlockId>(std::strtoull(argv[argi + 1], nullptr, 10))};
    std::promise<void> done;
    (*client)->IssueWrite(1, r, argv[argi + 2], [&] { done.set_value(); });
    if (done.get_future().wait_for(3s) != std::future_status::ready) {
      std::fprintf(stderr, "timeout: disk unresponsive\n");
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (cmd == "read" && argi + 1 < argc) {
    RegisterId r{static_cast<DiskId>(std::atoi(argv[argi])),
                 static_cast<BlockId>(std::strtoull(argv[argi + 1], nullptr, 10))};
    std::promise<std::string> got;
    (*client)->IssueRead(1, r, [&](Value v) { got.set_value(std::move(v)); });
    auto fut = got.get_future();
    if (fut.wait_for(3s) != std::future_status::ready) {
      std::fprintf(stderr, "timeout: disk unresponsive\n");
      return 1;
    }
    std::printf("%s\n", fut.get().c_str());
    return 0;
  }
  if (cmd == "stats" && argi < argc) {
    const auto d = static_cast<DiskId>(std::atoi(argv[argi]));
    auto text = (*client)->QueryStats(d, 3000ms);
    if (!text) {
      std::fprintf(stderr, "stats failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", text->c_str());
    return 0;
  }

  // Emulated register commands: one register spread over all listed disks.
  const auto n = static_cast<std::uint32_t>(eps.size());
  if (n % 2 == 0) {
    std::fprintf(stderr, "reg-* needs an odd number of disks (2t+1)\n");
    return 2;
  }
  core::FarmConfig cfg{(n - 1) / 2};
  auto regs = cfg.Spread(0);
  if (cmd == "reg-write" && argi < argc) {
    core::SwmrAtomicWriter writer(**client, cfg, regs, 1);
    writer.Write(argv[argi]);
    std::printf("ok (on a majority of %u disks)\n", n);
    return 0;
  }
  if (cmd == "reg-read") {
    core::SwmrAtomicReader reader(**client, cfg, regs, 2);
    auto v = reader.Read(OpOptions::WithDeadline(3000ms));
    if (!v) {
      std::fprintf(stderr, "%s: too many disks unresponsive?\n",
                   v.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", v->empty() ? "<initial>" : v->c_str());
    return 0;
  }
  return Usage(argv[0]);
}
