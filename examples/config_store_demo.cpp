// A leaderless, fault-tolerant configuration store on network-attached
// disks: three services update configuration concurrently; every reader
// sees the same totally ordered state; a full disk crash is absorbed.
//
//   $ ./examples/config_store_demo
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/config_store.h"
#include "core/config.h"
#include "sim/sim_farm.h"

int main() {
  using namespace nadreg;

  core::FarmConfig cfg{/*t=*/1};
  sim::SimFarm::Options opts;
  opts.seed = 2026;
  opts.max_delay_us = 40;
  sim::SimFarm farm(opts);

  std::printf("config store on NADs: 3 services, %u disks (t=%u), no leader\n\n",
              cfg.num_disks(), cfg.t);

  {
    std::vector<std::jthread> services;
    services.emplace_back([&] {
      apps::ConfigStore cfgstore(farm, cfg, 300, 1);
      cfgstore.Set("service.web/replicas", "3");
      cfgstore.Set("service.web/image", "web:v41");
    });
    services.emplace_back([&] {
      apps::ConfigStore cfgstore(farm, cfg, 300, 2);
      cfgstore.Set("service.db/replicas", "5");
      cfgstore.Set("feature.dark_mode", "on");
    });
    services.emplace_back([&] {
      apps::ConfigStore cfgstore(farm, cfg, 300, 3);
      cfgstore.Set("feature.dark_mode", "off");  // races with service 2
      cfgstore.Set("service.web/image", "web:v42");
    });
  }

  farm.CrashDisk(2);
  std::printf("(disk 2 crashed — t=1 tolerated)\n\n");

  apps::ConfigStore reader_a(farm, cfg, 300, 50);
  apps::ConfigStore reader_b(farm, cfg, 300, 51);
  auto snap_a = reader_a.Snapshot();
  auto snap_b = reader_b.Snapshot();

  std::printf("configuration (reader A):\n");
  for (const auto& [key, value] : snap_a) {
    std::printf("  %-26s = %s\n", key.c_str(), value.c_str());
  }
  std::printf("\nreader B sees the identical state: %s\n",
              snap_a == snap_b ? "yes" : "NO — divergence!");
  std::printf("updates in the global log: %zu\n", reader_a.UpdateCount());
  std::printf("\n(the dark_mode race resolved the same way for everyone — the\n");
  std::printf("log's global order is what a per-key register could not give)\n");
  return snap_a == snap_b && snap_a.size() == 4 ? 0 : 1;
}
