// Quickstart: emulate a fail-free shared register on a farm of fail-prone
// network-attached disks, crash a whole disk mid-run, and keep going.
//
//   $ ./examples/quickstart
//
// This uses the simulated farm; see nad_server_main.cpp / nad_client_cli.cpp
// to run the identical algorithms against real TCP disk servers.
#include <cstdio>
#include <thread>

#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/swmr_atomic.h"
#include "sim/sim_farm.h"

int main() {
  using namespace nadreg;

  // A farm of 2t+1 = 3 disks, of which t = 1 may fail.
  core::FarmConfig cfg{/*t=*/1};
  sim::SimFarm farm;

  std::printf("nadreg quickstart: %u simulated disks, tolerating %u crash(es)\n\n",
              cfg.num_disks(), cfg.t);

  // --- 1. A single-writer register (Section 4.2): cheap, finite blocks. ---
  auto regs = cfg.Spread(/*block=*/0);
  core::SwmrAtomicWriter writer(farm, cfg, regs, /*pid=*/1);
  core::SwmrAtomicReader reader(farm, cfg, regs, /*pid=*/2);

  writer.Write("hello, disks");
  std::printf("[swmr] wrote 'hello, disks'; reader sees: '%s'\n",
              reader.Read().c_str());

  farm.CrashDisk(0);
  std::printf("[swmr] disk 0 crashed (all its blocks stopped responding)\n");

  writer.Write("still here");
  std::printf("[swmr] after the crash, reader sees: '%s'\n\n",
              reader.Read().c_str());

  // --- 2. A multi-writer register (Fig. 3): uniform, any process may write. ---
  core::MwmrAtomic alice(farm, cfg, /*object=*/7, /*pid=*/10);
  core::MwmrAtomic bob(farm, cfg, /*object=*/7, /*pid=*/11);
  core::MwmrAtomic carol(farm, cfg, /*object=*/7, /*pid=*/12);

  alice.Write("from alice");
  bob.Write("from bob");
  auto seen = carol.Read();
  std::printf("[mwmr] alice then bob wrote; carol reads: '%s'\n",
              seen ? seen->c_str() : "<initial>");

  carol.Write("from carol");
  auto last = alice.Read();
  std::printf("[mwmr] carol wrote; alice reads: '%s'\n",
              last ? last->c_str() : "<initial>");

  std::printf("\nDone. The registers stayed atomic through a full disk crash.\n");
  return 0;
}
