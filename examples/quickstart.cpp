// Quickstart: emulate a fail-free shared register on a farm of fail-prone
// network-attached disks, crash a whole disk mid-run, and keep going.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --coded n=8,k=5    # pick the code geometry
//
// This uses the simulated farm; see nad_server_main.cpp / nad_client_cli.cpp
// to run the identical algorithms against real TCP disk servers.
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/address.h"
#include "core/coded/coded_mwmr.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/swmr_atomic.h"
#include "sim/sim_farm.h"

int main(int argc, char** argv) {
  using namespace nadreg;

  // Optional: --coded n=N,k=K overrides the erasure-code geometry of
  // section 3 (defaults to n=8, k=5 — 1.6x storage, one tolerated crash).
  core::CodedOptions coded_opts;
  for (int i = 1; i < argc; ++i) {
    unsigned n = 0, k = 0;
    if (std::strcmp(argv[i], "--coded") == 0 && i + 1 < argc &&
        std::sscanf(argv[++i], "n=%u,k=%u", &n, &k) == 2) {
      coded_opts = core::CodedOptions{n, k};
    } else {
      std::fprintf(stderr, "usage: %s [--coded n=N,k=K]\n", argv[0]);
      return 2;
    }
  }

  // A farm of 2t+1 = 3 disks, of which t = 1 may fail.
  core::FarmConfig cfg{/*t=*/1};
  sim::SimFarm farm;

  std::printf("nadreg quickstart: %u simulated disks, tolerating %u crash(es)\n\n",
              cfg.num_disks(), cfg.t);

  // --- 1. A single-writer register (Section 4.2): cheap, finite blocks. ---
  auto regs = cfg.Spread(/*block=*/0);
  core::SwmrAtomicWriter writer(farm, cfg, regs, /*pid=*/1);
  core::SwmrAtomicReader reader(farm, cfg, regs, /*pid=*/2);

  writer.Write("hello, disks");
  std::printf("[swmr] wrote 'hello, disks'; reader sees: '%s'\n",
              reader.Read().c_str());

  farm.CrashDisk(0);
  std::printf("[swmr] disk 0 crashed (all its blocks stopped responding)\n");

  writer.Write("still here");
  std::printf("[swmr] after the crash, reader sees: '%s'\n\n",
              reader.Read().c_str());

  // --- 2. A multi-writer register (Fig. 3): uniform, any process may write. ---
  core::MwmrAtomic alice(farm, cfg, /*object=*/7, /*pid=*/10);
  core::MwmrAtomic bob(farm, cfg, /*object=*/7, /*pid=*/11);
  core::MwmrAtomic carol(farm, cfg, /*object=*/7, /*pid=*/12);

  alice.Write("from alice");
  bob.Write("from bob");
  auto seen = carol.Read();
  std::printf("[mwmr] alice then bob wrote; carol reads: '%s'\n",
              seen ? seen->c_str() : "<initial>");

  carol.Write("from carol");
  auto last = alice.Read();
  std::printf("[mwmr] carol wrote; alice reads: '%s'\n",
              last ? last->c_str() : "<initial>");

  // --- 3. An erasure-coded register: fragments, not copies. ---------------
  // Each of n fresh disks stores one Reed-Solomon fragment of 1/k of the
  // value (~n/k x storage instead of n x); any k fragments reconstruct.
  sim::SimFarm coded_farm;
  auto cw = core::CodedMwmr::Make(coded_farm, /*object=*/1, /*pid=*/20,
                                  coded_opts);
  auto cr = core::CodedMwmr::Make(coded_farm, /*object=*/1, /*pid=*/21,
                                  coded_opts);
  if (!cw.ok() || !cr.ok()) {
    std::fprintf(stderr, "[coded] bad geometry: %s\n",
                 cw.status().ToString().c_str());
    return 1;
  }
  const std::string value(1000, '#');
  cw->Write(value);
  const RegisterId frag0{0, core::MakeBlock(1, core::Component::kCodedCell, 0)};
  std::printf(
      "[coded] n=%u k=%u: wrote %zu bytes; disk 0 stores a %zu-byte cell\n",
      coded_opts.n, coded_opts.k, value.size(),
      coded_farm.Peek(frag0).size());
  if (coded_opts.f() > 0) {
    coded_farm.CrashDisk(1);
    std::printf("[coded] disk 1 crashed (geometry tolerates f=%u)\n",
                coded_opts.f());
  }
  auto got = cr->Read();
  std::printf("[coded] reader reconstructs from any %u fragments: %s\n",
              coded_opts.k,
              got && *got == value ? "intact" : "MISMATCH");

  std::printf("\nDone. The registers stayed atomic through a full disk crash.\n");
  return 0;
}
