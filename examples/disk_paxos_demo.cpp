// Disk Paxos on network-attached disks — the paper's motivating system.
//
// Five proposer processes race to decide a value over 3 simulated disks
// while one disk crashes mid-run. Consensus must pick exactly one value,
// proposed by someone.
//
//   $ ./examples/disk_paxos_demo [seed]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "apps/disk_paxos.h"
#include "common/rng.h"
#include "core/config.h"
#include "sim/sim_farm.h"

int main(int argc, char** argv) {
  using namespace nadreg;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  core::FarmConfig cfg{/*t=*/1};
  sim::SimFarm::Options opts;
  opts.seed = seed;
  opts.max_delay_us = 80;
  sim::SimFarm farm(opts);

  constexpr int kProposers = 5;
  std::printf("disk-paxos demo: %d proposers, %u disks (t=%u), seed %llu\n\n",
              kProposers, cfg.num_disks(), cfg.t,
              static_cast<unsigned long long>(seed));

  Mutex mu;
  std::vector<std::pair<int, std::string>> decisions;
  std::vector<std::uint64_t> ballots(kProposers);

  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProposers; ++p) {
      threads.emplace_back([&, p] {
        apps::DiskPaxos paxos(farm, cfg, /*object=*/1, kProposers, p);
        Rng rng(seed * 31 + p);
        std::string v = paxos.Propose("value-of-p" + std::to_string(p), rng);
        MutexLock lock(mu);
        decisions.emplace_back(p, v);
        ballots[p] = paxos.BallotsTried();
      });
    }
    // Crash a disk while the race is on.
    threads.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      farm.CrashDisk(2);
      MutexLock lock(mu);
      std::printf("  !! disk 2 crashed mid-race\n");
    });
  }

  std::printf("\ndecisions (in completion order):\n");
  bool agree = true;
  for (const auto& [p, v] : decisions) {
    std::printf("  proposer %d decided '%s' after %llu ballot(s)\n", p,
                v.c_str(), static_cast<unsigned long long>(ballots[p]));
    if (v != decisions[0].second) agree = false;
  }
  std::printf("\nagreement: %s\n", agree ? "OK — consensus reached on one value"
                                         : "VIOLATED");
  return agree ? 0 : 1;
}
