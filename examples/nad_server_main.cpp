// Run a real network-attached disk daemon.
//
//   $ ./examples/nad_server --listen 7001              # 127.0.0.1:7001
//   $ ./examples/nad_server --listen 0.0.0.0:7001      # all interfaces
//   $ ./examples/nad_server --port 7001                # legacy spelling
//
// The daemon serves read-block / write-block requests for any disk id on
// a frame-oriented TCP protocol (see src/nad/protocol.h). Point
// nad_client_cli (or any NadClient) at a set of these to get a live SAN.
// The STATS opcode (nad_client_cli `stats <disk>`) returns its metrics.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore>

#include "nad/protocol.h"
#include "nad/server.h"

namespace {
std::binary_semaphore g_stop{0};
void HandleSignal(int) { g_stop.release(); }
}  // namespace

int main(int argc, char** argv) {
  using namespace nadreg;

  nad::NadServer::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      opts.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      auto ep = nad::ParseEndpoint(argv[++i]);
      if (!ep) {
        std::fprintf(stderr, "bad --listen %s: %s\n", argv[i],
                     ep.status().ToString().c_str());
        return 2;
      }
      opts.host = ep->host;
      opts.port = ep->port;
    } else if (std::strcmp(argv[i], "--min-delay-us") == 0 && i + 1 < argc) {
      opts.min_delay_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-delay-us") == 0 && i + 1 < argc) {
      opts.max_delay_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--data-path") == 0 && i + 1 < argc) {
      opts.data_path = argv[++i];  // durable: journal + recovery
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--listen [HOST:]PORT | --port N] [--min-delay-us N] "
          "[--max-delay-us N] [--data-path PATH]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  auto server = nad::NadServer::Start(opts);
  if (!server) {
    std::fprintf(stderr, "failed to start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("nad-server listening on %s:%u (service delay %llu-%llu us)\n",
              opts.host.c_str(), (*server)->port(),
              static_cast<unsigned long long>(opts.min_delay_us),
              static_cast<unsigned long long>(opts.max_delay_us));
  std::printf("press Ctrl-C to stop\n");

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  g_stop.acquire();
  std::printf("\nstopping (served %llu requests)\n",
              static_cast<unsigned long long>((*server)->ServedCount()));
  (*server)->Stop();
  return 0;
}
