// A totally ordered shared log on network-attached disks, built from the
// paper's Section 6 primitives (name snapshot + one-shot registers).
// Three writers append concurrently; two independent readers then see the
// exact same global order, even after a disk crash.
//
//   $ ./examples/shared_log_demo
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/shared_log.h"
#include "core/config.h"
#include "sim/sim_farm.h"

int main() {
  using namespace nadreg;

  core::FarmConfig cfg{/*t=*/1};
  sim::SimFarm::Options opts;
  opts.seed = 5;
  opts.max_delay_us = 40;
  sim::SimFarm farm(opts);

  std::printf("shared log on NADs: 3 concurrent appenders, %u disks (t=%u)\n\n",
              cfg.num_disks(), cfg.t);

  {
    std::vector<std::jthread> appenders;
    for (ProcessId p = 1; p <= 3; ++p) {
      appenders.emplace_back([&, p] {
        apps::SharedLog log(farm, cfg, /*object=*/200, p);
        for (int i = 0; i < 3; ++i) {
          log.Append("writer" + std::to_string(p) + "/entry" +
                     std::to_string(i));
        }
      });
    }
  }

  farm.CrashDisk(1);
  std::printf("(disk 1 crashed after the appends)\n\n");

  apps::SharedLog reader1(farm, cfg, 200, 50);
  apps::SharedLog reader2(farm, cfg, 200, 51);
  auto log1 = reader1.Read();
  auto log2 = reader2.Read();

  std::printf("reader 1 sees %zu entries:\n", log1.size());
  for (std::size_t i = 0; i < log1.size(); ++i) {
    std::printf("  %2zu. [p%llu] %s\n", i,
                static_cast<unsigned long long>(log1[i].author),
                log1[i].payload.c_str());
  }

  bool same = log1.size() == log2.size();
  for (std::size_t i = 0; same && i < log1.size(); ++i) {
    same = log1[i].payload == log2[i].payload;
  }
  std::printf("\nreader 2 sees the identical order: %s\n",
              same ? "yes" : "NO — divergence!");
  return same && log1.size() == 9 ? 0 : 1;
}
