// Lamport's fast mutual exclusion running on network-attached disks — the
// translation the paper's introduction motivates: take an existing shared
// memory algorithm verbatim, replace its registers with fault-tolerant
// emulated ones, and it runs on a disk farm that tolerates crashes.
//
//   $ ./examples/mutex_on_nads [processes] [rounds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "apps/fast_mutex.h"
#include "core/config.h"
#include "sim/sim_farm.h"

int main(int argc, char** argv) {
  using namespace nadreg;

  const int procs = argc > 1 ? std::atoi(argv[1]) : 3;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;
  core::FarmConfig cfg{/*t=*/1};
  sim::SimFarm::Options opts;
  opts.seed = 99;
  opts.max_delay_us = 30;
  sim::SimFarm farm(opts);

  std::printf("fast mutual exclusion on NADs: %d processes x %d rounds, "
              "%u disks (t=%u)\n\n", procs, rounds, cfg.num_disks(), cfg.t);

  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::atomic<int> fast_acquires{0};
  std::atomic<int> slow_acquires{0};
  int shared_counter = 0;  // protected only by the distributed mutex

  {
    std::vector<std::jthread> threads;
    for (int p = 1; p <= procs; ++p) {
      threads.emplace_back([&, p] {
        apps::FastMutex mtx(farm, cfg, /*object=*/100,
                            static_cast<std::uint32_t>(procs),
                            static_cast<std::uint32_t>(p));
        for (int r = 0; r < rounds; ++r) {
          mtx.Lock();
          if (in_cs.fetch_add(1) != 0) ++violations;
          ++shared_counter;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          in_cs.fetch_sub(1);
          (mtx.LastAcquireWasFast() ? fast_acquires : slow_acquires)
              .fetch_add(1);
          mtx.Unlock();
        }
      });
    }
  }

  std::printf("critical sections executed: %d (expected %d)\n", shared_counter,
              procs * rounds);
  std::printf("mutual exclusion violations: %d\n", violations.load());
  std::printf("fast-path acquires: %d, slow-path acquires: %d\n",
              fast_acquires.load(), slow_acquires.load());
  const bool ok = violations == 0 && shared_counter == procs * rounds;
  std::printf("\n%s\n", ok ? "OK — Lamport's algorithm, untouched, on fail-prone disks"
                           : "FAILED");
  return ok ? 0 : 1;
}
