// End-to-end demo on REAL sockets: spin up 2t+1 durable disk daemons in
// this process, run the full stack over TCP — an emulated atomic MWMR
// register, Disk Paxos consensus — kill a daemon mid-run, then restart it
// from its journal and show the state survived.
//
// The whole run is captured as a chrome://tracing span file
// (tcp_cluster_trace.json, or $NADREG_TRACE_PATH): every RPC round trip,
// quorum wait, snapshot collect pass and write-back phase is a span.
//
//   $ ./examples/tcp_cluster_demo
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "apps/disk_paxos.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "nad/client.h"
#include "nad/server.h"
#include "obs/trace.h"

int main() {
  using namespace nadreg;
  namespace fs = std::filesystem;

  core::FarmConfig cfg{/*t=*/1};
  const fs::path dir =
      fs::temp_directory_path() / ("nadreg_cluster_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  std::printf("tcp cluster demo: %u durable disk daemons on loopback (t=%u)\n\n",
              cfg.num_disks(), cfg.t);

  // 0. Capture the whole run as a chrome://tracing file.
  const char* trace_env = std::getenv("NADREG_TRACE_PATH");
  const std::string trace_path =
      trace_env != nullptr ? trace_env : "tcp_cluster_trace.json";
  if (Status s = obs::StartTrace(trace_path); s.ok()) {
    std::printf("trace capture: %s (open in chrome://tracing)\n\n",
                trace_path.c_str());
  } else {
    std::printf("trace capture unavailable: %s\n\n", s.ToString().c_str());
  }

  // 1. Start the disk daemons (each with its own journal).
  std::vector<std::unique_ptr<nad::NadServer>> servers;
  std::map<DiskId, nad::Endpoint> endpoints;
  std::vector<std::uint16_t> ports;
  for (DiskId d = 0; d < cfg.num_disks(); ++d) {
    nad::NadServer::Options opts;
    opts.data_path = (dir / ("disk" + std::to_string(d))).string();
    auto server = nad::NadServer::Start(opts);
    if (!server) {
      std::fprintf(stderr, "daemon %u failed: %s\n", d,
                   server.status().ToString().c_str());
      return 1;
    }
    ports.push_back((*server)->port());
    endpoints[d] = nad::Endpoint{"127.0.0.1", ports.back()};
    std::printf("  disk %u: 127.0.0.1:%u (journal: %s.log)\n", d, ports.back(),
                opts.data_path.c_str());
    servers.push_back(std::move(*server));
  }

  auto client = nad::NadClient::Connect(endpoints);
  if (!client) return 1;

  // 2. An atomic MWMR register over the wire.
  core::MwmrAtomic alice(**client, cfg, /*object=*/1, /*pid=*/1);
  core::MwmrAtomic bob(**client, cfg, 1, 2);
  alice.Write("written by alice over TCP");
  auto v = bob.Read();
  std::printf("\n[mwmr over tcp] bob reads: '%s'\n",
              v ? v->c_str() : "<initial>");

  // 3. Disk Paxos over the wire.
  apps::DiskPaxos p0(**client, cfg, /*object=*/2, /*n=*/2, /*pid=*/0);
  apps::DiskPaxos p1(**client, cfg, 2, 2, 1);
  Rng rng(1);
  std::string d0 = p0.Propose("from-p0", rng);
  std::string d1 = p1.Propose("from-p1", rng);
  std::printf("[disk paxos over tcp] p0 decided '%s', p1 decided '%s' (%s)\n",
              d0.c_str(), d1.c_str(), d0 == d1 ? "agreement" : "VIOLATION");

  // 4. Kill daemon 0 hard; the register must keep working (t=1).
  servers[0]->Stop();
  std::printf("\n[fault] daemon 0 killed\n");
  bob.Write("written while disk 0 is down");
  auto v2 = alice.Read();
  std::printf("[mwmr over tcp] alice reads: '%s'\n",
              v2 ? v2->c_str() : "<initial>");

  // 5. Restart daemon 0 from its journal: acknowledged blocks are back.
  {
    nad::NadServer::Options opts;
    opts.data_path = (dir / "disk0").string();
    auto server = nad::NadServer::Start(opts);
    if (!server) return 1;
    std::printf("\n[recovery] daemon 0 restarted on port %u, %zu block(s) "
                "recovered from its journal\n",
                (*server)->port(), (*server)->RecoveredCount());
    servers[0] = std::move(*server);
  }

  obs::StopTrace();

  const bool ok = v && v2 && d0 == d1;
  std::printf("\n%s\n", ok ? "OK — full stack on real sockets with a disk "
                             "failure and journal recovery"
                           : "FAILED");
  std::error_code ec;
  fs::remove_all(dir, ec);
  return ok ? 0 : 1;
}
